//! Tables 1–3: machine descriptions and the benchmark catalog.
//!
//! The "benchmark" here times catalog construction and kernel
//! compilation-from-source (the frontend path every experiment shares);
//! the tables themselves are printed once at the end.

use criterion::{criterion_group, criterion_main, Criterion};
use slp_bench::figures::{render_machine_table, render_table3};
use slp_core::MachineConfig;

fn bench_tables(c: &mut Criterion) {
    c.bench_function("table3_catalog_and_frontend", |b| {
        b.iter(|| {
            for spec in slp_suite::catalog() {
                std::hint::black_box(slp_suite::kernel(spec.name, 1));
            }
        })
    });
    println!(
        "\n== Table 1 ==\n{}",
        render_machine_table(&MachineConfig::intel_dunnington())
    );
    println!(
        "== Table 2 ==\n{}",
        render_machine_table(&MachineConfig::amd_phenom_ii())
    );
    println!("== Table 3 ==\n{}", render_table3());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tables
}
criterion_main!(benches);
