//! Ablations of the design choices DESIGN.md calls out:
//!
//! * contiguity-aware vs the paper's pure-reuse grouping weights,
//! * indirect (permuted) superword reuse on/off,
//! * live-superword-set capacity,
//! * vector register file size (spill pressure),
//! * the opt-in cross-iteration (loop-carried) reuse extension.
//!
//! Criterion times the compile+run pipeline per variant; a summary of the
//! simulated-cycle impact of each ablation is printed at the end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slp_analysis::WeightParams;
use slp_core::{compile, MachineConfig, SlpConfig, Strategy};
use slp_vm::{execute_gated, lower_kernel_with};

fn suite_cycles(machine: &MachineConfig, tweak: impl Fn(&mut SlpConfig)) -> f64 {
    let mut total = 0.0;
    for (_, program) in slp_suite::all(1) {
        let mut cfg = SlpConfig::for_machine(machine.clone(), Strategy::Holistic);
        tweak(&mut cfg);
        let kernel = compile(&program, &cfg);
        total += execute_gated(&kernel, machine, true)
            .expect("suite kernels run")
            .stats
            .metrics
            .cycles;
    }
    total
}

/// Static cycle total of the suite when codegen's permuted reuse is
/// toggled (schedules fixed; only emission changes).
fn suite_static_cycles(machine: &MachineConfig, permuted_reuse: bool) -> f64 {
    let mut total = 0.0;
    for (_, program) in slp_suite::all(1) {
        let cfg = SlpConfig::for_machine(machine.clone(), Strategy::Holistic);
        let kernel = compile(&program, &cfg);
        for (_, code) in lower_kernel_with(&kernel, machine, true, permuted_reuse) {
            total += code.static_metrics.cycles;
        }
    }
    total
}

fn bench_ablations(c: &mut Criterion) {
    let machine = MachineConfig::intel_dunnington();
    let mut group = c.benchmark_group("ablations");

    for (label, weights) in [
        ("weights/cost-aware", WeightParams::default()),
        ("weights/reuse-only", WeightParams::reuse_only()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &weights, |b, w| {
            b.iter(|| std::hint::black_box(suite_cycles(&machine, |cfg| cfg.weights = *w)))
        });
    }
    for cap in [2usize, 16] {
        group.bench_with_input(
            BenchmarkId::new("live-set-capacity", cap),
            &cap,
            |b, &cap| {
                b.iter(|| {
                    std::hint::black_box(suite_cycles(&machine, |cfg| {
                        cfg.schedule.live_set_capacity = cap
                    }))
                })
            },
        );
    }
    group.finish();

    // Cycle-impact summary.
    let base = suite_cycles(&machine, |_| {});
    let report = |label: &str, cycles: f64| {
        println!(
            "{label:<38} {:+6.2}% cycles vs default",
            (cycles / base - 1.0) * 100.0
        );
    };
    println!("\n== ablation summary (suite total, Intel, scale 1) ==");
    report(
        "pure-reuse weights (paper formula)",
        suite_cycles(&machine, |cfg| cfg.weights = WeightParams::reuse_only()),
    );
    report(
        "live superword set capacity = 2",
        suite_cycles(&machine, |cfg| cfg.schedule.live_set_capacity = 2),
    );
    report(
        "vector register file = 4",
        suite_cycles(&machine, |cfg| cfg.machine.vector_regs = 4),
    );
    let with = suite_static_cycles(&machine, true);
    let without = suite_static_cycles(&machine, false);
    println!(
        "{:<38} {:+6.2}% static cycles when disabled",
        "permuted (indirect) superword reuse",
        (without / with - 1.0) * 100.0
    );
    report(
        "cross-iteration reuse enabled",
        suite_cycles(&machine, |cfg| cfg.cross_iteration_reuse = true),
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablations
}
criterion_main!(benches);
