//! Figure 17: Global-over-SLP reductions in dynamic instructions
//! (excluding packing/unpacking) and in packing/unpacking operations.

use criterion::{criterion_group, criterion_main, Criterion};
use slp_bench::figures::{measure_suite, render_fig17};
use slp_core::MachineConfig;

fn bench_fig17(c: &mut Criterion) {
    let machine = MachineConfig::intel_dunnington();
    c.bench_function("fig17_instruction_counters", |b| {
        b.iter(|| std::hint::black_box(measure_suite(&machine, 1)))
    });
    println!(
        "\n== Figure 17 (scale 1) ==\n{}",
        render_fig17(&measure_suite(&machine, 1))
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig17
}
criterion_main!(benches);
