//! Empirical complexity of the holistic grouping: the paper states the
//! basic grouping algorithm is `O(E_SG² × N_VP)` in the statement
//! grouping graph's edges and the pack graph's nodes. This bench times
//! `compile` for growing basic-block sizes (wider unroll factors of one
//! kernel) so the curve can be eyeballed against that bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slp_core::{compile, MachineConfig, SlpConfig, Strategy};

fn bench_scaling(c: &mut Criterion) {
    let machine = MachineConfig::intel_dunnington();
    let program = slp_suite::kernel("milc", 1);
    let mut group = c.benchmark_group("compile_scaling");
    for unroll in [1usize, 2, 4, 8] {
        // Body statements grow linearly with the unroll factor; candidate
        // counts quadratically.
        group.bench_with_input(
            BenchmarkId::new("holistic_unroll", unroll),
            &unroll,
            |b, &unroll| {
                let mut cfg = SlpConfig::for_machine(machine.clone(), Strategy::Holistic);
                cfg.unroll = unroll;
                b.iter(|| std::hint::black_box(compile(&program, &cfg)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("baseline_unroll", unroll),
            &unroll,
            |b, &unroll| {
                let mut cfg = SlpConfig::for_machine(machine.clone(), Strategy::Baseline);
                cfg.unroll = unroll;
                b.iter(|| std::hint::black_box(compile(&program, &cfg)))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scaling
}
criterion_main!(benches);
