//! Figure 16: execution-time reductions of Native / SLP / Global over the
//! scalar baseline on the Intel machine.
//!
//! Each scheme's compile+execute pipeline is timed per benchmark; the
//! figure's rows are printed once at the end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slp_bench::figures::{measure_suite, render_fig16};
use slp_bench::{measure, Scheme};
use slp_core::MachineConfig;

fn bench_fig16(c: &mut Criterion) {
    let machine = MachineConfig::intel_dunnington();
    let mut group = c.benchmark_group("fig16");
    for scheme in [Scheme::Scalar, Scheme::Native, Scheme::Slp, Scheme::Global] {
        group.bench_with_input(
            BenchmarkId::new("suite", scheme.label()),
            &scheme,
            |b, &scheme| {
                let kernels = slp_suite::all(1);
                b.iter(|| {
                    for (_, p) in &kernels {
                        std::hint::black_box(measure(p, &machine, scheme).cycles());
                    }
                })
            },
        );
    }
    group.finish();
    println!(
        "\n== Figure 16 (scale 1) ==\n{}",
        render_fig16(&measure_suite(&machine, 1))
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig16
}
criterion_main!(benches);
