//! Figure 18: percentage of scalar dynamic instructions eliminated by
//! Global for hypothetical datapath widths of 128–1024 bits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slp_bench::figures::{fig18_series, render_fig18};
use slp_bench::{measure, Scheme};
use slp_core::MachineConfig;

fn bench_fig18(c: &mut Criterion) {
    let machine = MachineConfig::intel_dunnington();
    let mut group = c.benchmark_group("fig18");
    // Criterion times a representative kernel per width (wide-datapath
    // compiles of the *whole* suite take minutes per sample; the full
    // sweep runs once below for the printed figure).
    let probe_kernel = slp_suite::kernel("lbm", 1);
    for bits in [128u32, 256, 512, 1024] {
        group.bench_with_input(BenchmarkId::new("width", bits), &bits, |b, &bits| {
            let m = machine.with_datapath_bits(bits);
            b.iter(|| std::hint::black_box(measure(&probe_kernel, &m, Scheme::Global).cycles()))
        });
    }
    group.finish();
    let series = fig18_series(&machine, 1, &[128, 256, 512, 1024]);
    println!("\n== Figure 18 (scale 1) ==\n{}", render_fig18(&series));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig18
}
criterion_main!(benches);
