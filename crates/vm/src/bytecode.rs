//! The fast-path execution engine: pre-resolved bytecode over flat
//! arenas.
//!
//! The reference interpreter in [`exec`](crate::exec) resolves every
//! register through a growable `Vec<Vec<f64>>`, every scalar through
//! `VarId` accessors, every array subscript through
//! [`AffineExpr::eval`](slp_ir::AffineExpr::eval)'s linear environment
//! search, and re-computes every instruction's [`InstMetrics`] on every
//! execution. That is the right shape for an oracle, and the wrong shape
//! for throughput.
//!
//! [`BytecodeKernel::compile`] lowers the [`BlockCode`] streams once into
//! a dense [`BOp`] pool in which *everything is a pre-resolved numeric
//! index*:
//!
//! * virtual registers become disjoint slots of one flat `f64` arena
//!   (assigned per static definition, so the translator also proves every
//!   use has a reaching definition and rejects malformed code with a
//!   typed [`ExecError`] instead of panicking),
//! * arrays are concatenated into one flat memory arena with per-array
//!   bases; each [`ArrayRef`] becomes per-dimension
//!   `constant + Σ coeff·loop_slot` terms over loop-*depth* indices, so a
//!   subscript evaluation is a few adds and multiplies with no
//!   environment search,
//! * scalars live in a dense `f64` frame indexed by `VarId` position,
//! * per-instruction [`InstMetrics`] are computed once at translation and
//!   accumulated by pool index at run time,
//! * common adjacent pairs (load+op, splat+op, op+store) are fused into
//!   superinstructions, halving dispatch for the dominant patterns.
//!
//! Execution semantics are *bit-identical* to the reference engine —
//! metric accumulation order, iteration/first-iteration protocol,
//! replication population, coercions, truncating zips, per-block cycle
//! attribution and error strings are all preserved — which the
//! differential gate (`verify::differential`, `bench vm-throughput`, and
//! the `engine_differential` test) checks continuously.

use std::collections::HashMap;

use slp_core::{CompiledKernel, CostParams, MachineConfig, Replication, SafetyCert};
use slp_ir::{
    ArrayId, ArrayRef, BinOp, BlockId, Dest, ExprShape, Item, LoopVarId, Operand, Program,
    ScalarType, StmtId, TypeEnv, UnOp,
};

use crate::code::{InstMetrics, SplatSrc, VInst, VReg};
use crate::codegen::{lower_kernel, BlockCode};
use crate::exec::{apply_shape, populate_replication, ExecError, Outcome, RunStats};
use crate::memory::MachineState;

/// A register slot: base index into the flat register arena. Widths are
/// carried by the consuming instruction (access count, op width).
type RegBase = u32;

/// A `(start, end)` range into one of the side pools.
type Range = (u32, u32);

/// One pre-resolved operand of a scalar statement.
#[derive(Debug, Clone, Copy)]
enum RArg {
    /// An immediate.
    Const(f64),
    /// A dense scalar-frame slot.
    Scalar(u32),
    /// An index into the access pool.
    Array(u32),
}

/// The pre-resolved destination of a scalar statement.
#[derive(Debug, Clone, Copy)]
enum RDest {
    /// A scalar-frame slot plus its declared type (for storage coercion).
    Scalar { slot: u32, ty: ScalarType },
    /// An index into the access pool.
    Array(u32),
}

/// The splat source with its scalar slot pre-resolved (the `from_memory`
/// flag only affects the precomputed metrics).
#[derive(Debug, Clone, Copy)]
enum SplatVal {
    Const(f64),
    Var(u32),
}

/// One dimension of a resolved access: `constant + Σ coeff·loop_vals[d]`
/// checked against `0 <= · < extent` and folded with `stride`.
#[derive(Debug, Clone, Copy)]
struct Dim {
    constant: i64,
    terms: Range,
    extent: i64,
    stride: i64,
}

/// A fully resolved array reference.
#[derive(Debug, Clone, Copy)]
struct Access {
    /// The referenced array (cold-path error rendering only).
    array: ArrayId,
    /// The array's base in the flat memory arena.
    base: u32,
    /// The array's element type (store coercion).
    ty: ScalarType,
    /// The per-dimension index expressions.
    dims: Range,
    /// Whether the access rank matches the array rank; a mismatch is
    /// unconditionally out of bounds (as in `ArrayInfo::in_bounds`).
    rank_ok: bool,
    /// Whether the per-dimension bounds checks must run. `false` only
    /// when the kernel's memory-safety certificate proved the access in
    /// bounds for every iteration (and check elision was not disabled),
    /// licensing the fast unchecked resolve path.
    checked: bool,
}

/// One dense, pre-resolved instruction. `m*` fields index the metrics
/// pool; metric accumulation happens *before* the value effect, exactly
/// like the reference engine, and fused pairs interleave
/// (m₁, effect₁, m₂, effect₂) so the non-associative `f64` cycle sums
/// stay bit-identical.
#[derive(Debug, Clone, Copy)]
enum BOp {
    Scalar {
        m: u32,
        shape: ExprShape,
        args: Range,
        dest: RDest,
    },
    Load {
        m: u32,
        dst: RegBase,
        acc: Range,
    },
    Store {
        m: u32,
        src: RegBase,
        acc: Range,
    },
    Pack {
        m: u32,
        dst: RegBase,
        vars: Range,
    },
    Unpack {
        m: u32,
        src: RegBase,
        lanes: Range,
    },
    ConstVec {
        m: u32,
        dst: RegBase,
        vals: Range,
    },
    Splat {
        m: u32,
        dst: RegBase,
        width: u32,
        src: SplatVal,
    },
    Permute {
        m: u32,
        dst: RegBase,
        src: RegBase,
        perm: Range,
    },
    /// Spill/Reload: cost-only bookkeeping, values stay in their slots.
    Nop {
        m: u32,
    },
    Carried {
        m_first: u32,
        m_steady: u32,
        dst: RegBase,
        from: RegBase,
        acc: Range,
    },
    Op {
        m: u32,
        dst: RegBase,
        width: u32,
        shape: ExprShape,
        srcs: Range,
    },
    /// Superinstruction: `Load` immediately feeding an `Op`.
    LoadOp {
        m1: u32,
        ld_dst: RegBase,
        acc: Range,
        m2: u32,
        dst: RegBase,
        width: u32,
        shape: ExprShape,
        srcs: Range,
    },
    /// Superinstruction: `Splat` immediately feeding an `Op`.
    SplatOp {
        m1: u32,
        sp_dst: RegBase,
        sp_width: u32,
        sp_src: SplatVal,
        m2: u32,
        dst: RegBase,
        width: u32,
        shape: ExprShape,
        srcs: Range,
    },
    /// Superinstruction: an `Op` whose result is immediately stored.
    OpStore {
        m1: u32,
        dst: RegBase,
        width: u32,
        shape: ExprShape,
        srcs: Range,
        m2: u32,
        acc: Range,
    },
}

/// The execution tree: blocks (op ranges) and loops, mirroring the
/// program's item structure with all ids pre-resolved to block slots.
#[derive(Debug, Clone)]
enum Node {
    Block {
        slot: u32,
        ops: Range,
    },
    Loop {
        lower: i64,
        upper: i64,
        step: i64,
        /// Preheader op ranges of blocks directly inside this loop, run
        /// once per loop entry.
        preheaders: Vec<(u32, Range)>,
        body: Vec<Node>,
    },
}

/// A compiled kernel lowered to dense bytecode, reusable across runs.
///
/// Build one with [`BytecodeKernel::compile`] (or
/// [`BytecodeKernel::from_codes`] for pre-lowered streams) and execute it
/// any number of times with [`BytecodeKernel::run`] — translation cost is
/// paid once, which is what the throughput harness amortizes.
#[derive(Debug, Clone)]
pub struct BytecodeKernel {
    program: Program,
    cost: CostParams,
    replications: Vec<Replication>,
    roots: Vec<Node>,
    ops: Vec<BOp>,
    metrics: Vec<InstMetrics>,
    accesses: Vec<Access>,
    dims: Vec<Dim>,
    terms: Vec<(u32, i64)>,
    args: Vec<RArg>,
    var_slots: Vec<u32>,
    lanes: Vec<(u32, ScalarType)>,
    consts: Vec<f64>,
    perms: Vec<u32>,
    srcs: Vec<u32>,
    array_base: Vec<u32>,
    array_len: Vec<u32>,
    arena_len: usize,
    reg_len: usize,
    block_ids: Vec<BlockId>,
    vectorized_blocks: usize,
    loop_metrics: InstMetrics,
}

impl BytecodeKernel {
    /// Lowers `kernel` for `machine` (running the regular
    /// [`lower_kernel`] code generator, cost gate as given) and
    /// translates the result to bytecode.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ExecError`] when the generated code is
    /// malformed: a use of a never-defined register
    /// ([`ExecErrorKind::UndefinedRegister`](crate::exec::ExecErrorKind)),
    /// or structural inconsistencies such as lane-width mismatches and
    /// out-of-range permutation indices
    /// ([`ExecErrorKind::MalformedCode`](crate::exec::ExecErrorKind)).
    pub fn compile(
        kernel: &CompiledKernel,
        machine: &MachineConfig,
        cost_gate: bool,
    ) -> Result<BytecodeKernel, ExecError> {
        let codes = lower_kernel(kernel, machine, cost_gate);
        BytecodeKernel::from_codes(kernel, machine, &codes)
    }

    /// Like [`BytecodeKernel::compile`], but keeps every per-dimension
    /// bounds check even for accesses the kernel's memory-safety
    /// certificate proved safe. This is the `--no-unchecked` escape
    /// hatch and the baseline the `bench vm-throughput` certified row is
    /// measured against.
    pub fn compile_checked(
        kernel: &CompiledKernel,
        machine: &MachineConfig,
        cost_gate: bool,
    ) -> Result<BytecodeKernel, ExecError> {
        let codes = lower_kernel(kernel, machine, cost_gate);
        BytecodeKernel::from_codes_with(kernel, machine, &codes, false)
    }

    /// `(unchecked, total)` array-access counts of this lowering: how
    /// many accesses the kernel's memory-safety certificate let run
    /// without their per-dimension bounds checks. Under
    /// [`BytecodeKernel::compile_checked`] the first count is always 0.
    pub fn unchecked_accesses(&self) -> (usize, usize) {
        let unchecked = self.accesses.iter().filter(|a| !a.checked).count();
        (unchecked, self.accesses.len())
    }

    /// Translates pre-lowered `codes` (one per block of
    /// `kernel.program`, in [`Program::blocks`] order) to bytecode.
    ///
    /// # Errors
    ///
    /// See [`BytecodeKernel::compile`].
    pub fn from_codes(
        kernel: &CompiledKernel,
        machine: &MachineConfig,
        codes: &[(BlockId, BlockCode)],
    ) -> Result<BytecodeKernel, ExecError> {
        BytecodeKernel::from_codes_with(kernel, machine, codes, true)
    }

    /// [`BytecodeKernel::from_codes`] with explicit control over whether
    /// certificate-proven accesses may drop their bounds checks.
    fn from_codes_with(
        kernel: &CompiledKernel,
        machine: &MachineConfig,
        codes: &[(BlockId, BlockCode)],
        elide_checks: bool,
    ) -> Result<BytecodeKernel, ExecError> {
        let program = &kernel.program;
        let mut array_base = Vec::new();
        let mut array_len = Vec::new();
        let mut arena_len = 0u32;
        for a in program.array_ids() {
            let len = program.array(a).len().max(0) as u32;
            array_base.push(arena_len);
            array_len.push(len);
            arena_len += len;
        }

        let mut tr = Translator {
            program,
            cost: &machine.cost,
            ops: Vec::new(),
            metrics: Vec::new(),
            accesses: Vec::new(),
            dims: Vec::new(),
            terms: Vec::new(),
            args: Vec::new(),
            var_slots: Vec::new(),
            lanes: Vec::new(),
            consts: Vec::new(),
            perms: Vec::new(),
            srcs: Vec::new(),
            array_base: &array_base,
            reg_len: 0,
            safety: &kernel.safety,
            block: BlockId(0),
            elide_checks,
        };

        let infos = program.blocks();
        let mut pre_ranges = Vec::with_capacity(codes.len());
        let mut body_ranges = Vec::with_capacity(codes.len());
        let mut block_ids = Vec::with_capacity(codes.len());
        let mut by_first: HashMap<StmtId, u32> = HashMap::new();
        for (slot, (info, (id, code))) in infos.iter().zip(codes).enumerate() {
            debug_assert_eq!(info.id, *id);
            tr.block = info.id;
            let body_stack: Vec<LoopVarId> = info.loops.iter().map(|h| h.var).collect();
            let pre_stack = &body_stack[..body_stack.len().saturating_sub(1)];
            let mut map: HashMap<u32, (u32, u32)> = HashMap::new();
            let mut pend_pre = Vec::new();
            let mut pend_body = Vec::new();
            let mut pre =
                tr.translate_stream(&code.preheader, pre_stack, &mut map, &mut pend_pre)?;
            let mut body =
                tr.translate_stream(&code.insts, &body_stack, &mut map, &mut pend_body)?;
            resolve_pending(&mut pre, &pend_pre, &map)?;
            resolve_pending(&mut body, &pend_body, &map)?;
            let pre = tr.fuse_stream(pre);
            let body = tr.fuse_stream(body);
            pre_ranges.push(tr.append(pre));
            body_ranges.push(tr.append(body));
            block_ids.push(*id);
            by_first.insert(info.block.stmts()[0].id(), slot as u32);
        }

        let roots = build_nodes(program.items(), &by_first, &pre_ranges, &body_ranges)?;

        let Translator {
            ops,
            metrics,
            accesses,
            dims,
            terms,
            args,
            var_slots,
            lanes,
            consts,
            perms,
            srcs,
            reg_len,
            ..
        } = tr;
        Ok(BytecodeKernel {
            program: program.clone(),
            cost: machine.cost,
            replications: kernel.replications.clone(),
            roots,
            ops,
            metrics,
            accesses,
            dims,
            terms,
            args,
            var_slots,
            lanes,
            consts,
            perms,
            srcs,
            array_base,
            array_len,
            arena_len: arena_len as usize,
            reg_len: reg_len as usize,
            block_ids,
            vectorized_blocks: codes.iter().filter(|(_, c)| c.vectorized).count(),
            loop_metrics: InstMetrics {
                cycles: machine.cost.loop_overhead,
                dynamic_instructions: 2,
                ..InstMetrics::default()
            },
        })
    }

    /// Executes the bytecode on freshly seeded memory, producing the same
    /// [`Outcome`] the reference engine would.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on out-of-bounds accesses (same error
    /// strings as the reference engine).
    pub fn run(&self) -> Result<Outcome, ExecError> {
        self.run_from(MachineState::seeded(&self.program))
    }

    /// Executes the bytecode from an explicit initial memory image
    /// instead of the deterministic seeds. The state must have been
    /// allocated for this kernel's program (same arrays, same lengths) —
    /// start from [`MachineState::seeded`] and overwrite the cells of
    /// interest. Replicated arrays are repopulated from their sources
    /// before the kernel's loops run, exactly as in [`BytecodeKernel::run`].
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on out-of-bounds accesses.
    pub fn run_from(&self, state: MachineState) -> Result<Outcome, ExecError> {
        let mut stats = RunStats::default();
        let mut state = state;
        for r in &self.replications {
            populate_replication(&self.program, &self.cost, &mut state, &mut stats, r)?;
        }
        let (arrays, scalars) = state.into_parts();
        let mut arena = vec![0.0f64; self.arena_len];
        for (i, arr) in arrays.iter().enumerate() {
            let b = self.array_base[i] as usize;
            arena[b..b + arr.len()].copy_from_slice(arr);
        }

        let blocks = self.block_ids.len();
        let mut vm = Vm {
            bc: self,
            arena,
            scalars,
            regs: vec![0.0f64; self.reg_len],
            loop_vals: Vec::new(),
            stats,
            first: true,
            block_cycles: vec![0.0; blocks],
            block_seen: vec![false; blocks],
        };
        vm.run_nodes(&self.roots)?;

        let arrays = self
            .array_base
            .iter()
            .zip(&self.array_len)
            .map(|(&b, &n)| vm.arena[b as usize..b as usize + n as usize].to_vec())
            .collect();
        let mut block_cycles: Vec<(BlockId, f64)> = self
            .block_ids
            .iter()
            .enumerate()
            .filter(|&(s, _)| vm.block_seen[s])
            .map(|(s, &id)| (id, vm.block_cycles[s]))
            .collect();
        block_cycles.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        Ok(Outcome {
            state: MachineState::from_parts(arrays, vm.scalars),
            stats: vm.stats,
            vectorized_blocks: self.vectorized_blocks,
            block_cycles,
        })
    }

    /// Number of dense instructions in the pool (after fusion).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of fused superinstructions in the pool.
    pub fn fused_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| {
                matches!(
                    op,
                    BOp::LoadOp { .. } | BOp::SplatOp { .. } | BOp::OpStore { .. }
                )
            })
            .count()
    }
}

/// Positional operand count of an operator shape.
fn arity(shape: ExprShape) -> usize {
    match shape {
        ExprShape::Copy | ExprShape::Unary(_) => 1,
        ExprShape::Binary(_) => 2,
        ExprShape::MulAdd => 3,
        ExprShape::Select(_) => 4,
    }
}

fn use_reg(map: &HashMap<u32, (u32, u32)>, r: VReg) -> Result<(u32, u32), ExecError> {
    map.get(&r.0)
        .copied()
        .ok_or_else(|| ExecError::undefined_register(format!("read of undefined register {r}")))
}

/// Patches forward `carried_from` references once a block's full stream
/// has been translated (the carried source is defined *later* in the
/// body, by construction of the cross-iteration-reuse pass).
fn resolve_pending(
    ops: &mut [BOp],
    pending: &[(usize, VReg)],
    map: &HashMap<u32, (u32, u32)>,
) -> Result<(), ExecError> {
    for &(i, r) in pending {
        let (base, width) = use_reg(map, r)?;
        if let BOp::Carried { from, acc, .. } = &mut ops[i] {
            let need = acc.1 - acc.0;
            if width != need {
                return Err(ExecError::malformed(format!(
                    "carried load expects {need} lane(s) from {r}, register has {width}"
                )));
            }
            *from = base;
        }
    }
    Ok(())
}

fn build_nodes(
    items: &[Item],
    by_first: &HashMap<StmtId, u32>,
    pre_ranges: &[Range],
    body_ranges: &[Range],
) -> Result<Vec<Node>, ExecError> {
    let mut out = Vec::new();
    let mut idx = 0;
    while idx < items.len() {
        match &items[idx] {
            Item::Stmt(first) => {
                // One static basic block = this maximal statement run.
                let mut end = idx + 1;
                while end < items.len() && matches!(items[end], Item::Stmt(_)) {
                    end += 1;
                }
                let &slot = by_first.get(&first.id()).ok_or_else(|| {
                    ExecError::malformed(format!("no code for block starting at {}", first.id()))
                })?;
                out.push(Node::Block {
                    slot,
                    ops: body_ranges[slot as usize],
                });
                idx = end;
            }
            Item::Loop(l) => {
                let mut preheaders = Vec::new();
                for body_item in &l.body {
                    if let Item::Stmt(first) = body_item {
                        if let Some(&slot) = by_first.get(&first.id()) {
                            preheaders.push((slot, pre_ranges[slot as usize]));
                        }
                    }
                }
                let body = build_nodes(&l.body, by_first, pre_ranges, body_ranges)?;
                out.push(Node::Loop {
                    lower: l.header.lower,
                    upper: l.header.upper,
                    step: l.header.step,
                    preheaders,
                    body,
                });
                idx += 1;
            }
        }
    }
    Ok(out)
}

struct Translator<'a> {
    program: &'a Program,
    cost: &'a CostParams,
    ops: Vec<BOp>,
    metrics: Vec<InstMetrics>,
    accesses: Vec<Access>,
    dims: Vec<Dim>,
    terms: Vec<(u32, i64)>,
    args: Vec<RArg>,
    var_slots: Vec<u32>,
    lanes: Vec<(u32, ScalarType)>,
    consts: Vec<f64>,
    perms: Vec<u32>,
    srcs: Vec<u32>,
    array_base: &'a [u32],
    reg_len: u32,
    safety: &'a SafetyCert,
    block: BlockId,
    elide_checks: bool,
}

impl<'a> Translator<'a> {
    fn metric(&mut self, inst: &VInst) -> u32 {
        self.metrics.push(inst.metrics(self.cost));
        (self.metrics.len() - 1) as u32
    }

    /// Assigns a fresh arena slot to a register definition. Zero-width
    /// definitions do not define (the reference engine treats an empty
    /// register vector as undefined).
    fn def(&mut self, map: &mut HashMap<u32, (u32, u32)>, r: VReg, width: usize) -> u32 {
        if width == 0 {
            map.remove(&r.0);
            return 0;
        }
        let base = self.reg_len;
        self.reg_len += width as u32;
        map.insert(r.0, (base, width as u32));
        base
    }

    /// Resolves one array reference against the loop-variable stack at
    /// this nesting depth. Variables outside the stack are dropped — they
    /// contribute zero, exactly like `AffineExpr::eval` on a missing
    /// environment entry.
    fn add_access(&mut self, r: &ArrayRef, stack: &[LoopVarId]) -> u32 {
        let info = self.program.array(r.array);
        let rank_ok = r.access.rank() == info.dims.len();
        // Check elision is licensed only when (a) the certificate proved
        // this reference safe in this block, and (b) every subscript
        // variable is on the current stack: the certificate evaluated
        // the reference under the block's *full* loop environment, so a
        // preheader-hoisted access whose dropped variable would read as
        // zero here is outside what was proven and stays checked.
        let checked = !(self.elide_checks
            && rank_ok
            && r.access
                .dims()
                .iter()
                .all(|e| e.terms().all(|(v, _)| stack.contains(&v)))
            && self.safety.is_proven_safe(self.block, r));
        let dim_start = self.dims.len() as u32;
        for (d, e) in r.access.dims().iter().enumerate() {
            let term_start = self.terms.len() as u32;
            for (v, c) in e.terms() {
                if let Some(pos) = stack.iter().position(|&s| s == v) {
                    self.terms.push((pos as u32, c));
                }
            }
            let (extent, stride) = if rank_ok {
                (info.dims[d], info.dims[d + 1..].iter().product())
            } else {
                (0, 0)
            };
            self.dims.push(Dim {
                constant: e.constant(),
                terms: (term_start, self.terms.len() as u32),
                extent,
                stride,
            });
        }
        self.accesses.push(Access {
            array: r.array,
            base: self.array_base[r.array.index()],
            ty: info.ty,
            dims: (dim_start, self.dims.len() as u32),
            rank_ok,
            checked,
        });
        (self.accesses.len() - 1) as u32
    }

    fn add_accesses(&mut self, refs: &[ArrayRef], stack: &[LoopVarId]) -> Range {
        let start = self.accesses.len() as u32;
        for r in refs {
            self.add_access(r, stack);
        }
        (start, self.accesses.len() as u32)
    }

    fn translate_stream(
        &mut self,
        insts: &[VInst],
        stack: &[LoopVarId],
        map: &mut HashMap<u32, (u32, u32)>,
        pending: &mut Vec<(usize, VReg)>,
    ) -> Result<Vec<BOp>, ExecError> {
        let mut out = Vec::with_capacity(insts.len());
        for inst in insts {
            let m = self.metric(inst);
            let op = match inst {
                VInst::Scalar { stmt, .. } => {
                    let operands = stmt.expr().operands();
                    if operands.len() > 4 {
                        return Err(ExecError::malformed(format!(
                            "statement {} has {} operands (max 4)",
                            stmt.id(),
                            operands.len()
                        )));
                    }
                    let start = self.args.len() as u32;
                    for o in operands {
                        let arg = match o {
                            Operand::Const(c) => RArg::Const(*c),
                            Operand::Scalar(v) => RArg::Scalar(v.index() as u32),
                            Operand::Array(r) => RArg::Array(self.add_access(r, stack)),
                        };
                        self.args.push(arg);
                    }
                    let dest = match stmt.dest() {
                        Dest::Scalar(v) => RDest::Scalar {
                            slot: v.index() as u32,
                            ty: TypeEnv::scalar_type(self.program, *v),
                        },
                        Dest::Array(r) => RDest::Array(self.add_access(r, stack)),
                    };
                    BOp::Scalar {
                        m,
                        shape: stmt.expr().shape(),
                        args: (start, self.args.len() as u32),
                        dest,
                    }
                }
                VInst::Load { dst, refs, .. } => {
                    let acc = self.add_accesses(refs, stack);
                    let dst = self.def(map, *dst, refs.len());
                    BOp::Load { m, dst, acc }
                }
                VInst::Store { src, refs, .. } => {
                    let (base, width) = use_reg(map, *src)?;
                    let n = refs.len().min(width as usize);
                    let acc = self.add_accesses(&refs[..n], stack);
                    BOp::Store { m, src: base, acc }
                }
                VInst::PackScalars { dst, vars, .. } => {
                    let start = self.var_slots.len() as u32;
                    self.var_slots.extend(vars.iter().map(|v| v.index() as u32));
                    let dst = self.def(map, *dst, vars.len());
                    BOp::Pack {
                        m,
                        dst,
                        vars: (start, self.var_slots.len() as u32),
                    }
                }
                VInst::UnpackScalars { src, vars, .. } => {
                    let (base, width) = use_reg(map, *src)?;
                    let n = vars.len().min(width as usize);
                    let start = self.lanes.len() as u32;
                    self.lanes.extend(
                        vars[..n]
                            .iter()
                            .map(|&v| (v.index() as u32, TypeEnv::scalar_type(self.program, v))),
                    );
                    BOp::Unpack {
                        m,
                        src: base,
                        lanes: (start, self.lanes.len() as u32),
                    }
                }
                VInst::ConstVec { dst, values } => {
                    let start = self.consts.len() as u32;
                    self.consts.extend_from_slice(values);
                    let dst = self.def(map, *dst, values.len());
                    BOp::ConstVec {
                        m,
                        dst,
                        vals: (start, self.consts.len() as u32),
                    }
                }
                VInst::Splat { dst, src, width } => {
                    let src = match src {
                        SplatSrc::Const(c) => SplatVal::Const(*c),
                        SplatSrc::Scalar { var, .. } => SplatVal::Var(var.index() as u32),
                    };
                    let dst = self.def(map, *dst, *width);
                    BOp::Splat {
                        m,
                        dst,
                        width: *width as u32,
                        src,
                    }
                }
                VInst::Permute { dst, src, perm } => {
                    let (base, width) = use_reg(map, *src)?;
                    if let Some(&bad) = perm.iter().find(|&&j| j >= width as usize) {
                        return Err(ExecError::malformed(format!(
                            "permute lane {bad} out of range for {width}-lane register {src}"
                        )));
                    }
                    let start = self.perms.len() as u32;
                    self.perms.extend(perm.iter().map(|&j| j as u32));
                    let dst = self.def(map, *dst, perm.len());
                    BOp::Permute {
                        m,
                        dst,
                        src: base,
                        perm: (start, self.perms.len() as u32),
                    }
                }
                VInst::Spill { .. } | VInst::Reload { .. } => BOp::Nop { m },
                VInst::CarriedLoad {
                    dst,
                    refs,
                    class,
                    carried_from,
                } => {
                    let as_load = VInst::Load {
                        dst: VReg(0), // cost lookup only
                        refs: refs.clone(),
                        class: *class,
                    };
                    let m_first = self.metric(&as_load);
                    let acc = self.add_accesses(refs, stack);
                    let dst = self.def(map, *dst, refs.len());
                    pending.push((out.len(), *carried_from));
                    BOp::Carried {
                        m_first,
                        m_steady: m,
                        dst,
                        from: 0, // patched by resolve_pending
                        acc,
                    }
                }
                VInst::Op { dst, shape, srcs } => {
                    if srcs.len() < arity(*shape) {
                        return Err(ExecError::malformed(format!(
                            "{:?} op has {} source register(s), needs {}",
                            shape,
                            srcs.len(),
                            arity(*shape)
                        )));
                    }
                    let resolved: Vec<(u32, u32)> = srcs
                        .iter()
                        .map(|&r| use_reg(map, r))
                        .collect::<Result<_, _>>()?;
                    let width = resolved[0].1;
                    if let Some((i, _)) = resolved.iter().enumerate().find(|(_, s)| s.1 < width) {
                        return Err(ExecError::malformed(format!(
                            "operand register {} of a {width}-lane op is narrower ({} lanes)",
                            srcs[i], resolved[i].1
                        )));
                    }
                    let start = self.srcs.len() as u32;
                    self.srcs.extend(resolved.iter().map(|&(b, _)| b));
                    let dst = self.def(map, *dst, width as usize);
                    BOp::Op {
                        m,
                        dst,
                        width,
                        shape: *shape,
                        srcs: (start, self.srcs.len() as u32),
                    }
                }
            };
            out.push(op);
        }
        Ok(out)
    }

    /// Greedy peephole fusion of adjacent pairs within one stream (never
    /// across the preheader/body boundary — the streams execute at
    /// different times).
    fn fuse_stream(&self, ops: Vec<BOp>) -> Vec<BOp> {
        let uses = |srcs: Range, base: RegBase| {
            self.srcs[srcs.0 as usize..srcs.1 as usize].contains(&base)
        };
        let mut out = Vec::with_capacity(ops.len());
        let mut i = 0;
        while i < ops.len() {
            let fused = if i + 1 < ops.len() {
                match (&ops[i], &ops[i + 1]) {
                    (
                        &BOp::Load {
                            m,
                            dst: ld_dst,
                            acc,
                        },
                        &BOp::Op {
                            m: m2,
                            dst,
                            width,
                            shape,
                            srcs,
                        },
                    ) if uses(srcs, ld_dst) => Some(BOp::LoadOp {
                        m1: m,
                        ld_dst,
                        acc,
                        m2,
                        dst,
                        width,
                        shape,
                        srcs,
                    }),
                    (
                        &BOp::Splat {
                            m,
                            dst: sp_dst,
                            width: sp_width,
                            src: sp_src,
                        },
                        &BOp::Op {
                            m: m2,
                            dst,
                            width,
                            shape,
                            srcs,
                        },
                    ) if uses(srcs, sp_dst) => Some(BOp::SplatOp {
                        m1: m,
                        sp_dst,
                        sp_width,
                        sp_src,
                        m2,
                        dst,
                        width,
                        shape,
                        srcs,
                    }),
                    (
                        &BOp::Op {
                            m,
                            dst,
                            width,
                            shape,
                            srcs,
                        },
                        &BOp::Store { m: m2, src, acc },
                    ) if src == dst => Some(BOp::OpStore {
                        m1: m,
                        dst,
                        width,
                        shape,
                        srcs,
                        m2,
                        acc,
                    }),
                    _ => None,
                }
            } else {
                None
            };
            match fused {
                Some(f) => {
                    out.push(f);
                    i += 2;
                }
                None => {
                    out.push(ops[i]);
                    i += 1;
                }
            }
        }
        out
    }

    fn append(&mut self, ops: Vec<BOp>) -> Range {
        let start = self.ops.len() as u32;
        self.ops.extend(ops);
        (start, self.ops.len() as u32)
    }
}

struct Vm<'a> {
    bc: &'a BytecodeKernel,
    arena: Vec<f64>,
    scalars: Vec<f64>,
    regs: Vec<f64>,
    loop_vals: Vec<i64>,
    stats: RunStats,
    first: bool,
    block_cycles: Vec<f64>,
    block_seen: Vec<bool>,
}

impl<'a> Vm<'a> {
    fn run_nodes(&mut self, nodes: &[Node]) -> Result<(), ExecError> {
        for node in nodes {
            match node {
                Node::Block { slot, ops } => {
                    let before = self.stats.metrics.cycles;
                    self.run_ops(*ops)?;
                    self.charge(*slot, before);
                }
                Node::Loop {
                    lower,
                    upper,
                    step,
                    preheaders,
                    body,
                } => {
                    // Preheaders of blocks directly inside this loop run
                    // once per loop entry (hoisted invariant packs).
                    if lower < upper {
                        for &(slot, range) in preheaders {
                            let before = self.stats.metrics.cycles;
                            self.run_ops(range)?;
                            self.charge(slot, before);
                        }
                    }
                    let saved_first = self.first;
                    let mut v = *lower;
                    while v < *upper {
                        self.first = v == *lower;
                        self.loop_vals.push(v);
                        self.run_nodes(body)?;
                        self.loop_vals.pop();
                        v += step;
                        // Loop control: increment + branch.
                        self.stats.iterations += 1;
                        self.stats.metrics.add(&self.bc.loop_metrics);
                    }
                    self.first = saved_first;
                }
            }
        }
        Ok(())
    }

    fn charge(&mut self, slot: u32, before: f64) {
        self.block_cycles[slot as usize] += self.stats.metrics.cycles - before;
        self.block_seen[slot as usize] = true;
    }

    fn run_ops(&mut self, range: Range) -> Result<(), ExecError> {
        let bc = self.bc;
        for op in &bc.ops[range.0 as usize..range.1 as usize] {
            match *op {
                BOp::Scalar {
                    m,
                    shape,
                    args,
                    dest,
                } => {
                    self.add_metric(m);
                    self.exec_scalar(shape, args, dest)?;
                }
                BOp::Load { m, dst, acc } => {
                    self.add_metric(m);
                    self.exec_load(dst, acc)?;
                }
                BOp::Store { m, src, acc } => {
                    self.add_metric(m);
                    self.exec_store(src, acc)?;
                }
                BOp::Pack { m, dst, vars } => {
                    self.add_metric(m);
                    for (j, i) in (vars.0..vars.1).enumerate() {
                        self.regs[dst as usize + j] =
                            self.scalars[bc.var_slots[i as usize] as usize];
                    }
                }
                BOp::Unpack { m, src, lanes } => {
                    self.add_metric(m);
                    for (j, i) in (lanes.0..lanes.1).enumerate() {
                        let (slot, ty) = bc.lanes[i as usize];
                        self.scalars[slot as usize] = ty.coerce(self.regs[src as usize + j]);
                    }
                }
                BOp::ConstVec { m, dst, vals } => {
                    self.add_metric(m);
                    let src = &bc.consts[vals.0 as usize..vals.1 as usize];
                    let d = dst as usize;
                    self.regs[d..d + src.len()].copy_from_slice(src);
                }
                BOp::Splat { m, dst, width, src } => {
                    self.add_metric(m);
                    self.exec_splat(dst, width, src);
                }
                BOp::Permute { m, dst, src, perm } => {
                    self.add_metric(m);
                    for (k, p) in (perm.0..perm.1).enumerate() {
                        self.regs[dst as usize + k] =
                            self.regs[src as usize + bc.perms[p as usize] as usize];
                    }
                }
                BOp::Nop { m } => self.add_metric(m),
                BOp::Carried {
                    m_first,
                    m_steady,
                    dst,
                    from,
                    acc,
                } => {
                    // A real load on the first iteration, a register move
                    // after.
                    if self.first {
                        self.add_metric(m_first);
                        self.exec_load(dst, acc)?;
                    } else {
                        self.add_metric(m_steady);
                        let w = (acc.1 - acc.0) as usize;
                        let (d, f) = (dst as usize, from as usize);
                        for j in 0..w {
                            self.regs[d + j] = self.regs[f + j];
                        }
                    }
                }
                BOp::Op {
                    m,
                    dst,
                    width,
                    shape,
                    srcs,
                } => {
                    self.add_metric(m);
                    self.exec_op(dst, width, shape, srcs);
                }
                BOp::LoadOp {
                    m1,
                    ld_dst,
                    acc,
                    m2,
                    dst,
                    width,
                    shape,
                    srcs,
                } => {
                    self.add_metric(m1);
                    self.exec_load(ld_dst, acc)?;
                    self.add_metric(m2);
                    self.exec_op(dst, width, shape, srcs);
                }
                BOp::SplatOp {
                    m1,
                    sp_dst,
                    sp_width,
                    sp_src,
                    m2,
                    dst,
                    width,
                    shape,
                    srcs,
                } => {
                    self.add_metric(m1);
                    self.exec_splat(sp_dst, sp_width, sp_src);
                    self.add_metric(m2);
                    self.exec_op(dst, width, shape, srcs);
                }
                BOp::OpStore {
                    m1,
                    dst,
                    width,
                    shape,
                    srcs,
                    m2,
                    acc,
                } => {
                    self.add_metric(m1);
                    self.exec_op(dst, width, shape, srcs);
                    self.add_metric(m2);
                    self.exec_store(dst, acc)?;
                }
            }
        }
        Ok(())
    }

    #[inline]
    fn add_metric(&mut self, m: u32) {
        self.stats.metrics.add(&self.bc.metrics[m as usize]);
    }

    /// Evaluates access `a` to a flat arena index, bounds-checked per
    /// dimension exactly like `ArrayInfo::in_bounds` + `linearize`.
    #[inline]
    fn resolve(&self, a: u32) -> Result<usize, ExecError> {
        let bc = self.bc;
        let acc = &bc.accesses[a as usize];
        if !acc.checked {
            // Certificate-proven access: the per-dimension range checks
            // were discharged statically, only the address math remains.
            let mut off = 0i64;
            for dim in &bc.dims[acc.dims.0 as usize..acc.dims.1 as usize] {
                let mut v = dim.constant;
                for &(depth, coeff) in &bc.terms[dim.terms.0 as usize..dim.terms.1 as usize] {
                    v += coeff * self.loop_vals[depth as usize];
                }
                off += v * dim.stride;
            }
            return Ok(acc.base as usize + off as usize);
        }
        if !acc.rank_ok {
            return Err(self.oob(acc));
        }
        let mut off = 0i64;
        for dim in &bc.dims[acc.dims.0 as usize..acc.dims.1 as usize] {
            let mut v = dim.constant;
            for &(depth, coeff) in &bc.terms[dim.terms.0 as usize..dim.terms.1 as usize] {
                v += coeff * self.loop_vals[depth as usize];
            }
            if v < 0 || v >= dim.extent {
                return Err(self.oob(acc));
            }
            off += v * dim.stride;
        }
        Ok(acc.base as usize + off as usize)
    }

    /// Cold path: reconstructs the reference engine's out-of-bounds
    /// message from the resolved access.
    #[cold]
    fn oob(&self, acc: &Access) -> ExecError {
        let bc = self.bc;
        let info = bc.program.array(acc.array);
        let idx: Vec<i64> = bc.dims[acc.dims.0 as usize..acc.dims.1 as usize]
            .iter()
            .map(|dim| {
                let mut v = dim.constant;
                for &(depth, coeff) in &bc.terms[dim.terms.0 as usize..dim.terms.1 as usize] {
                    v += coeff * self.loop_vals[depth as usize];
                }
                v
            })
            .collect();
        ExecError::out_of_bounds(format!(
            "{}{:?} out of bounds (dims {:?})",
            info.name, idx, info.dims
        ))
    }

    fn exec_load(&mut self, dst: RegBase, acc: Range) -> Result<(), ExecError> {
        for (j, a) in (acc.0..acc.1).enumerate() {
            let idx = self.resolve(a)?;
            self.regs[dst as usize + j] = self.arena[idx];
        }
        Ok(())
    }

    fn exec_store(&mut self, src: RegBase, acc: Range) -> Result<(), ExecError> {
        let bc = self.bc;
        for (j, a) in (acc.0..acc.1).enumerate() {
            let idx = self.resolve(a)?;
            let ty = bc.accesses[a as usize].ty;
            self.arena[idx] = ty.coerce(self.regs[src as usize + j]);
        }
        Ok(())
    }

    fn exec_splat(&mut self, dst: RegBase, width: u32, src: SplatVal) {
        let v = match src {
            SplatVal::Const(c) => c,
            SplatVal::Var(s) => self.scalars[s as usize],
        };
        let d = dst as usize;
        for slot in &mut self.regs[d..d + width as usize] {
            *slot = v;
        }
    }

    /// Elementwise op over pre-resolved source bases. Destination slots
    /// are always fresh (one per static definition), so there is no
    /// aliasing with sources.
    fn exec_op(&mut self, dst: RegBase, width: u32, shape: ExprShape, srcs: Range) {
        let bc = self.bc;
        let s = &bc.srcs[srcs.0 as usize..srcs.1 as usize];
        let d = dst as usize;
        let w = width as usize;
        match shape {
            ExprShape::Copy => {
                let a = s[0] as usize;
                for k in 0..w {
                    self.regs[d + k] = self.regs[a + k];
                }
            }
            ExprShape::Unary(op) => {
                let a = s[0] as usize;
                for k in 0..w {
                    let x = self.regs[a + k];
                    self.regs[d + k] = match op {
                        UnOp::Neg => -x,
                        UnOp::Abs => x.abs(),
                        UnOp::Sqrt => x.sqrt(),
                    };
                }
            }
            ExprShape::Binary(op) => {
                let (a, b) = (s[0] as usize, s[1] as usize);
                for k in 0..w {
                    let (x, y) = (self.regs[a + k], self.regs[b + k]);
                    self.regs[d + k] = match op {
                        BinOp::Add => x + y,
                        BinOp::Sub => x - y,
                        BinOp::Mul => x * y,
                        BinOp::Div => x / y,
                        BinOp::Min => x.min(y),
                        BinOp::Max => x.max(y),
                    };
                }
            }
            ExprShape::MulAdd => {
                let (a, b, c) = (s[0] as usize, s[1] as usize, s[2] as usize);
                for k in 0..w {
                    self.regs[d + k] = self.regs[a + k] + self.regs[b + k] * self.regs[c + k];
                }
            }
            ExprShape::Select(op) => {
                let (a, b, t, e) = (s[0] as usize, s[1] as usize, s[2] as usize, s[3] as usize);
                for k in 0..w {
                    self.regs[d + k] = if op.apply(self.regs[a + k], self.regs[b + k]) {
                        self.regs[t + k]
                    } else {
                        self.regs[e + k]
                    };
                }
            }
        }
    }

    fn exec_scalar(&mut self, shape: ExprShape, args: Range, dest: RDest) -> Result<(), ExecError> {
        let bc = self.bc;
        let a = &bc.args[args.0 as usize..args.1 as usize];
        let mut vals = [0.0f64; 4];
        for (i, arg) in a.iter().enumerate() {
            vals[i] = match *arg {
                RArg::Const(c) => c,
                RArg::Scalar(s) => self.scalars[s as usize],
                RArg::Array(acc) => self.arena[self.resolve(acc)?],
            };
        }
        let result = apply_shape(shape, &vals[..a.len()]);
        match dest {
            RDest::Scalar { slot, ty } => {
                self.scalars[slot as usize] = ty.coerce(result);
            }
            RDest::Array(acc) => {
                let idx = self.resolve(acc)?;
                let ty = bc.accesses[acc as usize].ty;
                self.arena[idx] = ty.coerce(result);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::BlockCode;
    use crate::exec::{execute_gated, execute_gated_reference};
    use slp_core::{compile, ExecErrorKind, SlpConfig, Strategy};

    fn machine() -> MachineConfig {
        MachineConfig::intel_dunnington()
    }

    const KERNEL: &str = "kernel k {
        const N = 32;
        array A: f64[2*N+2]; array B: f64[4*N+8];
        scalar a, b: f64;
        for i in 0..N {
            a = A[2*i];
            b = A[2*i+1];
            A[2*i] = a + B[4*i] * a;
            A[2*i+1] = b + B[4*i+2] * b;
        }
    }";

    fn assert_outcomes_identical(src: &str, strategy: Strategy, layout: bool, reuse: bool) {
        let p = slp_lang::compile(src).unwrap();
        let mut cfg = SlpConfig::for_machine(machine(), strategy);
        if layout {
            cfg = cfg.with_layout();
        }
        cfg.cross_iteration_reuse = reuse;
        let k = compile(&p, &cfg);
        let fast = execute_gated(&k, &machine(), true).unwrap();
        let slow = execute_gated_reference(&k, &machine(), true).unwrap();
        assert!(
            fast.state.bitwise_eq(&slow.state),
            "{strategy:?} memory image diverged"
        );
        assert_eq!(fast.stats, slow.stats, "{strategy:?} stats diverged");
        assert_eq!(fast.vectorized_blocks, slow.vectorized_blocks);
        assert_eq!(fast.block_cycles, slow.block_cycles);
    }

    #[test]
    fn matches_reference_across_strategies() {
        for strategy in [
            Strategy::Scalar,
            Strategy::Native,
            Strategy::Baseline,
            Strategy::Holistic,
        ] {
            assert_outcomes_identical(KERNEL, strategy, false, false);
        }
        assert_outcomes_identical(KERNEL, Strategy::Holistic, true, false);
        assert_outcomes_identical(KERNEL, Strategy::Holistic, false, true);
    }

    #[test]
    fn fusion_fires_on_vectorized_code() {
        let p = slp_lang::compile(
            "kernel f { array A: f64[64]; array B: f64[64];
             for i in 0..64 { A[i] = B[i] * 2.0; } }",
        )
        .unwrap();
        let cfg = SlpConfig::for_machine(machine(), Strategy::Holistic);
        let k = compile(&p, &cfg);
        let bc = BytecodeKernel::compile(&k, &machine(), true).unwrap();
        assert!(bc.fused_count() > 0, "expected superinstructions");
        assert!(bc.op_count() > 0);
    }

    #[test]
    fn runs_are_repeatable() {
        let p = slp_lang::compile(KERNEL).unwrap();
        let cfg = SlpConfig::for_machine(machine(), Strategy::Holistic);
        let k = compile(&p, &cfg);
        let bc = BytecodeKernel::compile(&k, &machine(), true).unwrap();
        let a = bc.run().unwrap();
        let b = bc.run().unwrap();
        assert!(a.state.bitwise_eq(&b.state));
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn out_of_bounds_keeps_the_reference_message() {
        let src = "kernel bad { array A: f64[4]; scalar x: f64;
                    for i in 0..8 { x = A[i]; A[i] = x; } }";
        let p = slp_lang::compile(src).unwrap();
        let cfg = SlpConfig::for_machine(machine(), Strategy::Scalar);
        let k = compile(&p, &cfg);
        // A proven-faulting access never loses its runtime check, so the
        // certificate machinery cannot swallow the trap.
        assert!(k.safety.proven_faulting() > 0);
        let bc = BytecodeKernel::compile(&k, &machine(), true).unwrap();
        assert!(bc.accesses.iter().all(|a| a.checked));
        let fast = execute_gated(&k, &machine(), true).unwrap_err();
        let slow = execute_gated_reference(&k, &machine(), true).unwrap_err();
        assert_eq!(fast, slow);
        assert_eq!(fast.kind(), ExecErrorKind::OutOfBounds);
    }

    #[test]
    fn certified_accesses_run_unchecked_and_match_the_checked_engine() {
        let p = slp_lang::compile(
            "kernel c { array A: f64[64]; array B: f64[64];
             for i in 0..64 { A[i] = B[i] * 2.0; } }",
        )
        .unwrap();
        for strategy in [Strategy::Scalar, Strategy::Holistic] {
            let cfg = SlpConfig::for_machine(machine(), strategy);
            let k = compile(&p, &cfg);
            assert!(k.safety.all_proven_safe());
            let fast = BytecodeKernel::compile(&k, &machine(), true).unwrap();
            assert!(
                fast.accesses.iter().all(|a| !a.checked),
                "{strategy:?}: every certified access should drop its check"
            );
            let checked = BytecodeKernel::compile_checked(&k, &machine(), true).unwrap();
            assert!(
                checked.accesses.iter().all(|a| a.checked),
                "{strategy:?}: compile_checked must keep every check"
            );
            let a = fast.run().unwrap();
            let b = checked.run().unwrap();
            let r = execute_gated_reference(&k, &machine(), true).unwrap();
            assert!(a.state.bitwise_eq(&b.state), "{strategy:?}");
            assert!(a.state.bitwise_eq(&r.state), "{strategy:?}");
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.stats, r.stats);
        }
    }

    #[test]
    fn undefined_register_is_a_typed_translation_error() {
        // A block whose only instruction consumes a register nothing
        // defines: the reference engine would fail at run time; the
        // translator rejects it up front with a typed error.
        let p =
            slp_lang::compile("kernel m { array A: f64[4]; for i in 0..4 { A[i] = A[i] + 1.0; } }")
                .unwrap();
        let cfg = SlpConfig::for_machine(machine(), Strategy::Scalar);
        let k = compile(&p, &cfg);
        let infos = k.program.blocks();
        let codes: Vec<(BlockId, BlockCode)> = infos
            .iter()
            .map(|info| {
                (
                    info.id,
                    BlockCode {
                        preheader: Vec::new(),
                        insts: vec![VInst::Store {
                            src: VReg(7),
                            refs: Vec::new(),
                            class: crate::code::AccessClass::Aligned,
                        }],
                        vectorized: false,
                        static_metrics: InstMetrics::default(),
                        preheader_metrics: InstMetrics::default(),
                    },
                )
            })
            .collect();
        let err = BytecodeKernel::from_codes(&k, &machine(), &codes).unwrap_err();
        assert_eq!(err.kind(), ExecErrorKind::UndefinedRegister);
        assert!(err.to_string().contains("undefined register x7"));
    }

    #[test]
    fn malformed_permute_is_a_typed_translation_error() {
        let p =
            slp_lang::compile("kernel m { array A: f64[4]; for i in 0..4 { A[i] = A[i] + 1.0; } }")
                .unwrap();
        let cfg = SlpConfig::for_machine(machine(), Strategy::Scalar);
        let k = compile(&p, &cfg);
        let infos = k.program.blocks();
        let codes: Vec<(BlockId, BlockCode)> = infos
            .iter()
            .map(|info| {
                (
                    info.id,
                    BlockCode {
                        preheader: Vec::new(),
                        insts: vec![
                            VInst::ConstVec {
                                dst: VReg(0),
                                values: vec![1.0, 2.0],
                            },
                            VInst::Permute {
                                dst: VReg(1),
                                src: VReg(0),
                                perm: vec![0, 5],
                            },
                        ],
                        vectorized: false,
                        static_metrics: InstMetrics::default(),
                        preheader_metrics: InstMetrics::default(),
                    },
                )
            })
            .collect();
        let err = BytecodeKernel::from_codes(&k, &machine(), &codes).unwrap_err();
        assert_eq!(err.kind(), ExecErrorKind::MalformedCode);
    }
}
