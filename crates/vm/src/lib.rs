//! # slp-vm — the cycle-approximate SIMD virtual machine
//!
//! The execution substrate standing in for the paper's Intel/AMD SSE2
//! hardware. It has four layers:
//!
//! * [`code`]: a small vector instruction set ([`VInst`]) whose
//!   instructions know their cycle costs and their contribution to the
//!   §7 counters (dynamic instructions, memory operations,
//!   packing/unpacking operations, permutations),
//! * [`codegen`]: lowers a [`slp_core::BlockSchedule`] to vector code with
//!   register-resident pack reuse (direct reuse = free, permuted reuse =
//!   one shuffle, otherwise load/gather), and applies the §4.3 cost-model
//!   gate,
//! * [`exec`]: an interpreter that actually *runs* the code on seeded
//!   memory, so any vectorized build can be checked bit-for-bit against
//!   the scalar build — an oracle the original paper did not have,
//! * [`bytecode`]: the fast-path engine behind [`execute`] — a dense,
//!   pre-resolved lowering of the same code (flat register/memory
//!   arenas, fused superinstructions) that produces bit-identical
//!   outcomes to the [`exec`] reference interpreter at a fraction of the
//!   interpretation cost,
//! * [`multicore`]: the analytic model behind the Figure 21 multicore
//!   scaling experiments.
//!
//! # Examples
//!
//! Compile a kernel two ways and compare both results and speed:
//!
//! ```
//! use slp_core::{compile, MachineConfig, SlpConfig, Strategy};
//! use slp_vm::execute;
//!
//! let src = "kernel k { array A: f64[64]; array B: f64[64];
//!            for i in 0..32 { A[i] = B[i] * 2.0; } }";
//! let program = slp_lang::compile(src).unwrap();
//! let machine = MachineConfig::intel_dunnington();
//!
//! let scalar = compile(&program, &SlpConfig::for_machine(machine.clone(), Strategy::Scalar));
//! let global = compile(&program, &SlpConfig::for_machine(machine.clone(), Strategy::Holistic));
//! let s = execute(&scalar, &machine).unwrap();
//! let g = execute(&global, &machine).unwrap();
//! assert!(g.state.arrays_bitwise_eq(&s.state, 2));
//! assert!(g.stats.metrics.cycles < s.stats.metrics.cycles);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bytecode;
pub mod carry;
pub mod code;
pub mod codegen;
pub mod exec;
pub mod hoist;
pub mod memory;
pub mod multicore;
pub mod regalloc;

pub use bytecode::BytecodeKernel;
pub use carry::apply_cross_iteration_reuse;
pub use code::{AccessClass, InstMetrics, LaneSink, ScalarPackClass, SplatSrc, VInst, VReg};
pub use codegen::{lower_block, lower_kernel, lower_kernel_with, BlockCode};
pub use exec::{
    apply_shape, execute, execute_fully_checked, execute_gated, execute_gated_reference,
    execute_reference, execute_reference_with_state, execute_with_state, run_scalar, ExecError,
    ExecErrorKind, Outcome, RunStats,
};
pub use hoist::hoist_invariant_packs;
pub use memory::{check_memory_budget, seed_scalar, seed_value, MachineState, MEMORY_BUDGET_ELEMS};
pub use multicore::{reduction_percent, MulticoreModel};
pub use regalloc::{allocate, insert_spill_code, Allocation};

// Re-export the machine descriptions for convenience: the VM and the
// optimizer share them.
pub use slp_core::{CostParams, MachineConfig};
