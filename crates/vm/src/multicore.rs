//! Multicore execution model for the Figure 21 experiments.
//!
//! The paper runs the (OpenMP) NAS kernels on 1–12 cores and reports the
//! execution-time reduction of each optimized version *measured against
//! the original application on the same core count*. Two first-order
//! effects shape those curves:
//!
//! * near-linear division of the parallel portion of the work across
//!   cores, limited by a serial fraction (Amdahl) and a per-core
//!   synchronization cost, and
//! * shared memory-bandwidth saturation: the front-side-bus era
//!   Dunnington cannot feed twelve cores, so execution time has a floor
//!   of `memory_cycles / bandwidth(cores)` with bandwidth saturating at
//!   a few cores' worth. The floor binds the scalar original (more
//!   memory traffic) harder than the vectorized code — which is why the
//!   paper observes the SLP savings getting *slightly better* at higher
//!   core counts ("mostly due to the less-than-perfect scalability of
//!   the original applications").
//!
//! This module applies that analytical model to a single-core
//! [`RunStats`] measurement.

use slp_core::MachineConfig;

use crate::exec::RunStats;

/// Parameters of the multicore model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MulticoreModel {
    /// Fraction of the single-core cycles that cannot be parallelized.
    pub serial_fraction: f64,
    /// Synchronization/fork-join cycles charged per extra core.
    pub sync_cycles_per_core: f64,
    /// Effective number of cores' worth of memory bandwidth the shared
    /// bus can sustain: execution time never drops below
    /// `memory_cycles / min(cores, saturation)`.
    pub bandwidth_saturation_cores: f64,
}

impl Default for MulticoreModel {
    /// Defaults sized for the suite's kernels. The synchronization cost
    /// is deliberately small relative to one kernel run: the paper's
    /// OpenMP programs amortize fork/join over far more work than these
    /// micro-kernels, so a realistic absolute barrier cost would swamp
    /// the simulation.
    fn default() -> Self {
        MulticoreModel {
            serial_fraction: 0.05,
            sync_cycles_per_core: 50.0,
            bandwidth_saturation_cores: 3.5,
        }
    }
}

impl MulticoreModel {
    /// A model with a specific serial fraction (per-benchmark knob).
    pub fn with_serial_fraction(serial_fraction: f64) -> Self {
        MulticoreModel {
            serial_fraction,
            ..MulticoreModel::default()
        }
    }

    /// Projected execution cycles of `stats` on `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn cycles(&self, stats: &RunStats, cores: usize) -> f64 {
        assert!(cores > 0, "at least one core");
        let total = stats.metrics.cycles;
        if cores == 1 {
            return total;
        }
        let serial = total * self.serial_fraction;
        let parallel = total - serial;
        let amdahl = serial + parallel / cores as f64 + self.sync_cycles_per_core * cores as f64;
        let bandwidth = (cores as f64).min(self.bandwidth_saturation_cores).max(1.0);
        let memory_floor = stats.metrics.memory_cycles / bandwidth;
        amdahl.max(memory_floor)
    }

    /// Projected seconds on `machine` with `cores` cores.
    pub fn seconds(&self, stats: &RunStats, cores: usize, machine: &MachineConfig) -> f64 {
        self.cycles(stats, cores) / (machine.clock_ghz * 1e9)
    }
}

/// The execution-time reduction (in percent) of `optimized` over
/// `original`, both projected onto `cores` cores — the Figure 21 y-axis.
pub fn reduction_percent(
    original: &RunStats,
    optimized: &RunStats,
    cores: usize,
    model: &MulticoreModel,
) -> f64 {
    let t0 = model.cycles(original, cores);
    let t1 = model.cycles(optimized, cores);
    (1.0 - t1 / t0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::InstMetrics;

    fn stats(cycles: f64, memory_cycles: f64) -> RunStats {
        RunStats {
            metrics: InstMetrics {
                cycles,
                memory_cycles,
                ..InstMetrics::default()
            },
            iterations: 0,
        }
    }

    #[test]
    fn one_core_is_identity() {
        let m = MulticoreModel::default();
        let s = stats(1e6, 4e5);
        assert_eq!(m.cycles(&s, 1), 1e6);
    }

    #[test]
    fn more_cores_reduce_time_sublinearly() {
        let m = MulticoreModel::default();
        let s = stats(1e8, 4e7);
        let t1 = m.cycles(&s, 1);
        let t4 = m.cycles(&s, 4);
        let t12 = m.cycles(&s, 12);
        assert!(t4 < t1);
        assert!(t12 < t4);
        // Sublinear: 12 cores give less than 12x.
        assert!(t12 > t1 / 12.0);
    }

    #[test]
    fn reduction_improves_with_cores_when_optimized_code_moves_less_memory() {
        // Scalar: heavily memory bound. Vectorized: 22% faster with
        // proportionally less memory traffic — once the shared bus
        // saturates, the original's memory floor binds harder and the
        // reported savings improve (the paper's Figure 21 observation).
        let model = MulticoreModel::default();
        let scalar = stats(1e8, 6.4e7);
        let vector = stats(7.8e7, 4.7e7);
        let r1 = reduction_percent(&scalar, &vector, 1, &model);
        let r12 = reduction_percent(&scalar, &vector, 12, &model);
        assert!(r12 > r1, "r1={r1:.2}%, r12={r12:.2}%");
    }

    #[test]
    fn bandwidth_floor_binds_at_high_core_counts() {
        let model = MulticoreModel::default();
        let s = stats(1e8, 6e7);
        // At 12 cores the Amdahl term is ~1.3e7 but the floor is ~1.7e7.
        assert_eq!(model.cycles(&s, 12), 6e7 / 3.5);
    }

    #[test]
    fn serial_fraction_limits_speedup() {
        let all_serial = MulticoreModel::with_serial_fraction(1.0);
        let s = stats(1e8, 0.0);
        // Only sync overhead is added.
        assert!(all_serial.cycles(&s, 12) >= 1e8);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let m = MulticoreModel::default();
        let _ = m.cycles(&stats(1.0, 0.0), 0);
    }
}
