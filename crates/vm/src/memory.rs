//! The simulated machine's memory: arrays plus the scalar frame.
//!
//! All values are computed in `f64` regardless of the declared element
//! type; the declared type only affects lane counts and addressing, which
//! is all the SLP algorithms care about. Arrays are seeded with a
//! deterministic pseudo-random pattern so that a scalar run and any
//! vectorized run of the same kernel can be compared bit for bit.

use slp_core::ExecError;
use slp_ir::{ArrayId, Program, VarId};

/// The VM's memory budget: total array elements a program may allocate.
///
/// 2^26 elements (512 MiB of f64 storage) is far beyond every suite and
/// bench kernel while keeping adversarial inputs — `array A: f64[1 <<
/// 60]` is a *legal* program — from aborting the process with an OOM
/// instead of a typed error.
pub const MEMORY_BUDGET_ELEMS: i64 = 1 << 26;

/// Checks `program` against [`MEMORY_BUDGET_ELEMS`].
///
/// Called by every execution entry point before memory is allocated.
///
/// # Errors
///
/// Returns a [`ResourceLimit`](slp_core::ExecErrorKind::ResourceLimit)
/// error when the program's total declared array storage exceeds the
/// budget.
pub fn check_memory_budget(program: &Program) -> Result<(), ExecError> {
    let total = program
        .arrays()
        .iter()
        .fold(0i64, |acc, a| acc.saturating_add(a.len().max(0)));
    if total > MEMORY_BUDGET_ELEMS {
        return Err(ExecError::resource_limit(format!(
            "program allocates {total} array elements, over the VM budget of {MEMORY_BUDGET_ELEMS}"
        )));
    }
    Ok(())
}

/// The memory image of one program run.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineState {
    arrays: Vec<Vec<f64>>,
    scalars: Vec<f64>,
}

/// SplitMix64 — the seeding PRNG (tiny, deterministic, well distributed).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic seed value of element `index` of array `id`.
///
/// Values land in `[0.25, 4.25)`: never zero (no divide-by-zero), never
/// negative (no NaN from `sqrt`), spread enough to make value mismatches
/// obvious.
pub fn seed_value(id: ArrayId, index: usize) -> f64 {
    let bits = mix((id.index() as u64) << 32 | index as u64);
    0.25 + 4.0 * ((bits >> 11) as f64 / (1u64 << 53) as f64)
}

/// The deterministic initial value of scalar `v`.
pub fn seed_scalar(v: VarId) -> f64 {
    let bits = mix(0xABCD_0000 ^ v.index() as u64);
    0.25 + 4.0 * ((bits >> 11) as f64 / (1u64 << 53) as f64)
}

impl MachineState {
    /// Allocates and seeds memory for `program`. Integer-typed arrays
    /// and scalars are seeded with whole values (their storage semantics
    /// truncate, so fractional seeds would be unrepresentable).
    pub fn seeded(program: &Program) -> Self {
        let arrays = program
            .array_ids()
            .map(|a| {
                let ty = program.array(a).ty;
                let len = program.array(a).len().max(0) as usize;
                (0..len)
                    .map(|i| ty.coerce(seed_value(a, i) * 4.0))
                    .collect()
            })
            .collect();
        let scalars = program
            .scalar_ids()
            .map(|v| {
                use slp_ir::TypeEnv;
                program.scalar_type(v).coerce(seed_scalar(v) * 4.0)
            })
            .collect();
        MachineState { arrays, scalars }
    }

    /// The contents of array `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not allocated in this state.
    pub fn array(&self, a: ArrayId) -> &[f64] {
        &self.arrays[a.index()]
    }

    /// Reads element `offset` of array `a`.
    pub fn load_array(&self, a: ArrayId, offset: usize) -> Option<f64> {
        self.arrays.get(a.index())?.get(offset).copied()
    }

    /// Writes element `offset` of array `a`. Returns `false` when out of
    /// bounds.
    pub fn store_array(&mut self, a: ArrayId, offset: usize, value: f64) -> bool {
        match self
            .arrays
            .get_mut(a.index())
            .and_then(|arr| arr.get_mut(offset))
        {
            Some(slot) => {
                *slot = value;
                true
            }
            None => false,
        }
    }

    /// Reads scalar `v`.
    pub fn scalar(&self, v: VarId) -> f64 {
        self.scalars[v.index()]
    }

    /// Writes scalar `v`.
    pub fn set_scalar(&mut self, v: VarId, value: f64) {
        self.scalars[v.index()] = value;
    }

    /// Bitwise equality of the first `n_arrays` arrays — the observable
    /// output of a kernel. (Scalar temporaries are renamed by unrolling
    /// and replicated arrays are appended by the layout stage, so only
    /// the original arrays are comparable across optimization levels.)
    pub fn arrays_bitwise_eq(&self, other: &MachineState, n_arrays: usize) -> bool {
        if self.arrays.len() < n_arrays || other.arrays.len() < n_arrays {
            return false;
        }
        (0..n_arrays).all(|a| {
            let (x, y) = (&self.arrays[a], &other.arrays[a]);
            x.len() == y.len() && x.iter().zip(y).all(|(u, v)| u.to_bits() == v.to_bits())
        })
    }

    /// Decomposes the state into its raw `(arrays, scalars)` storage.
    /// Used by the bytecode engine to flatten the seeded image into its
    /// execution arena without copying through the accessor interface.
    pub fn into_parts(self) -> (Vec<Vec<f64>>, Vec<f64>) {
        (self.arrays, self.scalars)
    }

    /// Rebuilds a state from raw `(arrays, scalars)` storage — the
    /// inverse of [`MachineState::into_parts`].
    pub fn from_parts(arrays: Vec<Vec<f64>>, scalars: Vec<f64>) -> Self {
        MachineState { arrays, scalars }
    }

    /// Bitwise equality of the *entire* state — every array and every
    /// scalar compared by `f64::to_bits`. Stricter than the derived
    /// `PartialEq` (NaN-exact) and than [`MachineState::arrays_bitwise_eq`]
    /// (which ignores scalars); used by the engine differential gate.
    pub fn bitwise_eq(&self, other: &MachineState) -> bool {
        self.arrays.len() == other.arrays.len()
            && self.scalars.len() == other.scalars.len()
            && self.arrays_bitwise_eq(other, self.arrays.len())
            && self
                .scalars
                .iter()
                .zip(&other.scalars)
                .all(|(u, v)| u.to_bits() == v.to_bits())
    }

    /// A 64-bit digest of the full array contents, for cheap regression
    /// assertions.
    pub fn digest(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for arr in &self.arrays {
            for v in arr {
                h = (h ^ v.to_bits()).wrapping_mul(0x1000_0000_01B3);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_ir::ScalarType;

    fn program() -> Program {
        let mut p = Program::new("t");
        p.add_array("A", ScalarType::F64, vec![8], true);
        p.add_array("B", ScalarType::F64, vec![4], true);
        p.add_scalar("x", ScalarType::F64);
        p
    }

    #[test]
    fn memory_budget_rejects_huge_programs() {
        let mut p = Program::new("t");
        p.add_array("A", ScalarType::F64, vec![1 << 40], true);
        let e = check_memory_budget(&p).unwrap_err();
        assert_eq!(e.kind(), slp_core::ExecErrorKind::ResourceLimit);
        // Overflowing extents saturate rather than wrapping past the cap.
        let mut q = Program::new("t");
        q.add_array("B", ScalarType::F64, vec![i64::MAX, i64::MAX], true);
        assert!(check_memory_budget(&q).is_err());
        assert!(check_memory_budget(&program()).is_ok());
    }

    #[test]
    fn seeding_is_deterministic_and_nonzero() {
        let p = program();
        let s1 = MachineState::seeded(&p);
        let s2 = MachineState::seeded(&p);
        assert!(s1.arrays_bitwise_eq(&s2, 2));
        assert!(s1.array(ArrayId::new(0)).iter().all(|&v| v >= 0.25));
        assert_ne!(
            seed_value(ArrayId::new(0), 0),
            seed_value(ArrayId::new(0), 1)
        );
        assert_ne!(
            seed_value(ArrayId::new(0), 0),
            seed_value(ArrayId::new(1), 0)
        );
    }

    #[test]
    fn loads_and_stores_round_trip() {
        let p = program();
        let mut s = MachineState::seeded(&p);
        assert!(s.store_array(ArrayId::new(0), 3, 7.5));
        assert_eq!(s.load_array(ArrayId::new(0), 3), Some(7.5));
        assert!(!s.store_array(ArrayId::new(0), 99, 1.0));
        assert_eq!(s.load_array(ArrayId::new(1), 99), None);
        s.set_scalar(VarId::new(0), 2.5);
        assert_eq!(s.scalar(VarId::new(0)), 2.5);
    }

    #[test]
    fn digest_tracks_changes() {
        let p = program();
        let mut s = MachineState::seeded(&p);
        let d0 = s.digest();
        s.store_array(ArrayId::new(0), 0, -1.0);
        assert_ne!(s.digest(), d0);
    }

    #[test]
    fn equality_is_bitwise_per_array_prefix() {
        let p = program();
        let mut a = MachineState::seeded(&p);
        let b = MachineState::seeded(&p);
        assert!(a.arrays_bitwise_eq(&b, 2));
        a.store_array(ArrayId::new(1), 0, 0.0);
        assert!(!a.arrays_bitwise_eq(&b, 2));
        assert!(a.arrays_bitwise_eq(&b, 1)); // array 0 still matches
    }
}
