//! Cross-iteration superword reuse (opt-in).
//!
//! The paper cites Shin, Chame & Hall's compiler-controlled caching of
//! the vector register file as complementary to its framework; this
//! module implements the loop-carried flavour of that idea on top of the
//! shared code generator. When a pack loaded this iteration at
//! `A[f(i + step)]` is exactly what another pack `A[f(i)]`'s *next*
//! iteration will need, the later load is replaced by a
//! [`VInst::CarriedLoad`]: on the first iteration it performs the real
//! load, on every later one it copies the still-live register from the
//! previous iteration — a vector move instead of memory traffic.
//!
//! Safety conditions:
//! * the array is read-only in the whole program (no store can
//!   invalidate the carried value between iterations),
//! * the consumer precedes the source in the body, so the copy happens
//!   before the source register is overwritten with this iteration's
//!   value,
//! * the block sits in an innermost loop with a positive step.

use slp_ir::{LoopHeader, Program};

use crate::code::VInst;
use crate::regalloc::def_of;

/// Rewrites eligible loads in `body` into carried loads. Returns the
/// number of conversions.
pub fn apply_cross_iteration_reuse(
    body: &mut [VInst],
    program: &Program,
    innermost: Option<&LoopHeader>,
) -> usize {
    let Some(h) = innermost else { return 0 };
    if h.step <= 0 {
        return 0;
    }

    // Collect plain loads from read-only arrays: (index, refs, dst).
    let loads: Vec<usize> = body
        .iter()
        .enumerate()
        .filter_map(|(idx, inst)| match inst {
            VInst::Load { refs, .. }
                if refs.iter().all(|r| program.array_is_read_only(r.array)) =>
            {
                Some(idx)
            }
            _ => None,
        })
        .collect();

    let mut conversions = 0;
    for &consumer_idx in &loads {
        // The consumer's next-iteration refs: i -> i + step.
        let shifted: Vec<slp_ir::ArrayRef> = match &body[consumer_idx] {
            VInst::Load { refs, .. } => refs
                .iter()
                .map(|r| {
                    slp_ir::ArrayRef::new(
                        r.array,
                        r.access
                            .substitute(h.var, &slp_ir::AffineExpr::var(h.var).offset(h.step)),
                    )
                })
                .collect(),
            _ => continue,
        };
        // A later load producing exactly those refs is the source whose
        // register survives into the next iteration.
        let source = loads.iter().copied().find(|&src_idx| {
            src_idx > consumer_idx
                && matches!(&body[src_idx], VInst::Load { refs, .. } if *refs == shifted)
        });
        let Some(src_idx) = source else { continue };
        let Some(carried_from) = def_of(&body[src_idx]) else {
            continue;
        };
        if let VInst::Load { dst, refs, class } = body[consumer_idx].clone() {
            body[consumer_idx] = VInst::CarriedLoad {
                dst,
                refs,
                class,
                carried_from,
            };
            conversions += 1;
        }
    }
    conversions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::{AccessClass, VReg};
    use slp_ir::{AccessVector, AffineExpr, ArrayRef, Expr, ScalarType};

    fn setup() -> (Program, LoopHeader) {
        let mut p = Program::new("t");
        let a = p.add_array("A", ScalarType::F64, vec![64], true); // read-only
        let b = p.add_array("B", ScalarType::F64, vec![64], true); // written
        let i = p.add_loop_var("i");
        let w = p.make_stmt(
            ArrayRef::new(b, AccessVector::new(vec![AffineExpr::var(i)])).into(),
            Expr::Copy(1.0.into()),
        );
        p.push_item(slp_ir::Item::Stmt(w));
        let _ = a;
        (
            p,
            LoopHeader {
                var: slp_ir::LoopVarId::new(0),
                lower: 0,
                upper: 16,
                step: 2,
            },
        )
    }

    fn load(dst: u32, array: u32, base: i64) -> VInst {
        // <A[2i+base], A[2i+base+1]>
        let refs = (0..2)
            .map(|k| {
                ArrayRef::new(
                    slp_ir::ArrayId::new(array),
                    AccessVector::new(vec![AffineExpr::var(slp_ir::LoopVarId::new(0))
                        .scaled(2)
                        .offset(base + k)]),
                )
            })
            .collect();
        VInst::Load {
            dst: VReg(dst),
            refs,
            class: AccessClass::Aligned,
        }
    }

    #[test]
    fn stencil_overlap_is_carried() {
        let (p, h) = setup();
        // Pack <A[2i], A[2i+1]> next iteration (i += 2) is
        // <A[2i+4], A[2i+5]> — exactly the second load of this iteration.
        let mut body = vec![load(0, 0, 0), load(1, 0, 4)];
        let n = apply_cross_iteration_reuse(&mut body, &p, Some(&h));
        assert_eq!(n, 1);
        assert!(matches!(
            &body[0],
            VInst::CarriedLoad {
                carried_from: VReg(1),
                ..
            }
        ));
        // The source stays a plain load.
        assert!(matches!(&body[1], VInst::Load { .. }));
    }

    #[test]
    fn written_arrays_are_never_carried() {
        let (p, h) = setup();
        let mut body = vec![load(0, 1, 0), load(1, 1, 4)];
        assert_eq!(apply_cross_iteration_reuse(&mut body, &p, Some(&h)), 0);
    }

    #[test]
    fn source_must_follow_the_consumer() {
        let (p, h) = setup();
        // Reversed order: the "source" is overwritten before the copy
        // could happen, so no conversion.
        let mut body = vec![load(1, 0, 4), load(0, 0, 0)];
        assert_eq!(apply_cross_iteration_reuse(&mut body, &p, Some(&h)), 0);
    }

    #[test]
    fn shift_must_match_the_loop_step() {
        let (p, h) = setup();
        // Offset 2 ≠ step × coeff (4): not next-iteration content.
        let mut body = vec![load(0, 0, 0), load(1, 0, 2)];
        assert_eq!(apply_cross_iteration_reuse(&mut body, &p, Some(&h)), 0);
    }

    #[test]
    fn top_level_blocks_are_untouched() {
        let (p, _) = setup();
        let mut body = vec![load(0, 0, 0), load(1, 0, 4)];
        assert_eq!(apply_cross_iteration_reuse(&mut body, &p, None), 0);
    }
}
