//! Vector register allocation — the paper's post-processing stage
//! ("finally, the post-processing module performs register allocation and
//! other low-level optimizations", Figure 3).
//!
//! The code generator emits SSA-like virtual vector registers; this
//! module maps them onto the machine's architectural register file with a
//! classic linear-scan allocator. When pressure exceeds the file size the
//! live range with the furthest next end is spilled: its definition gains
//! a [`VInst::Spill`] store and every later use a [`VInst::Reload`] —
//! real memory traffic that the run statistics account for. Values still
//! flow through the virtual registers in the interpreter (spills are
//! cost/bookkeeping instructions), so allocation can never change a
//! program's results, only its price.

use crate::code::{InstMetrics, VInst, VReg};

/// The result of allocating one block's virtual registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// Physical register per virtual register (dense by `VReg` index);
    /// `None` for spilled or unused registers.
    assignments: Vec<Option<u32>>,
    /// Whether each virtual register was spilled.
    spilled: Vec<bool>,
    /// Spill stores inserted.
    pub spill_stores: usize,
    /// Reloads inserted.
    pub spill_reloads: usize,
}

impl Allocation {
    /// The physical register assigned to `r`, if it was kept in the file.
    pub fn physical(&self, r: VReg) -> Option<u32> {
        self.assignments.get(r.0 as usize).copied().flatten()
    }

    /// Whether `r` was spilled.
    pub fn is_spilled(&self, r: VReg) -> bool {
        self.spilled.get(r.0 as usize).copied().unwrap_or(false)
    }

    /// Total spill instructions inserted.
    pub fn spill_count(&self) -> usize {
        self.spill_stores + self.spill_reloads
    }
}

/// The virtual register an instruction defines, if any.
pub fn def_of(inst: &VInst) -> Option<VReg> {
    match inst {
        VInst::Load { dst, .. }
        | VInst::PackScalars { dst, .. }
        | VInst::ConstVec { dst, .. }
        | VInst::Splat { dst, .. }
        | VInst::Permute { dst, .. }
        | VInst::Op { dst, .. }
        | VInst::CarriedLoad { dst, .. }
        | VInst::Reload { dst, .. } => Some(*dst),
        VInst::Scalar { .. }
        | VInst::Store { .. }
        | VInst::UnpackScalars { .. }
        | VInst::Spill { .. } => None,
    }
}

/// The virtual registers an instruction reads.
pub fn uses_of(inst: &VInst) -> Vec<VReg> {
    match inst {
        VInst::Permute { src, .. }
        | VInst::Store { src, .. }
        | VInst::UnpackScalars { src, .. }
        | VInst::Spill { src, .. } => vec![*src],
        VInst::CarriedLoad { carried_from, .. } => vec![*carried_from],
        VInst::Op { srcs, .. } => srcs.clone(),
        VInst::Scalar { .. }
        | VInst::Load { .. }
        | VInst::PackScalars { .. }
        | VInst::ConstVec { .. }
        | VInst::Splat { .. }
        | VInst::Reload { .. } => Vec::new(),
    }
}

/// Live interval of one virtual register: `[def, last_use]` instruction
/// indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Interval {
    def: usize,
    last_use: usize,
}

fn live_intervals(insts: &[VInst]) -> Vec<Option<Interval>> {
    let max_reg = insts
        .iter()
        .flat_map(|i| def_of(i).into_iter().chain(uses_of(i)))
        .map(|r| r.0 as usize + 1)
        .max()
        .unwrap_or(0);
    let mut intervals: Vec<Option<Interval>> = vec![None; max_reg];
    for (idx, inst) in insts.iter().enumerate() {
        if let Some(d) = def_of(inst) {
            let e = intervals[d.0 as usize].get_or_insert(Interval {
                def: idx,
                last_use: idx,
            });
            e.def = e.def.min(idx);
        }
        for u in uses_of(inst) {
            if let Some(e) = intervals[u.0 as usize].as_mut() {
                e.last_use = e.last_use.max(idx);
            }
        }
    }
    intervals
}

/// Linear-scan allocation of the block's virtual registers onto
/// `num_regs` physical registers, spilling furthest-ending ranges first.
pub fn allocate(insts: &[VInst], num_regs: usize) -> Allocation {
    let intervals = live_intervals(insts);
    let n = intervals.len();
    let mut assignments: Vec<Option<u32>> = vec![None; n];
    let mut spilled = vec![false; n];
    // Active set: (end, vreg, phys).
    let mut active: Vec<(usize, usize, u32)> = Vec::new();
    let mut free: Vec<u32> = (0..num_regs as u32).rev().collect();

    let mut order: Vec<usize> = (0..n).filter(|&r| intervals[r].is_some()).collect();
    order.sort_by_key(|&r| intervals[r].expect("filtered").def);

    for r in order {
        let iv = intervals[r].expect("filtered");
        // Expire finished intervals. A range ending exactly at this def's
        // instruction may be recycled: its last use happens in the same
        // instruction that writes the new value (dst == src is fine).
        active.retain(|&(end, _, phys)| {
            if end <= iv.def {
                free.push(phys);
                false
            } else {
                true
            }
        });
        if let Some(phys) = free.pop() {
            assignments[r] = Some(phys);
            active.push((iv.last_use, r, phys));
        } else {
            // Spill the active interval that ends last (or this one).
            let worst = active
                .iter()
                .enumerate()
                .max_by_key(|(_, &(end, _, _))| end)
                .map(|(i, &entry)| (i, entry));
            match worst {
                Some((slot, (end, victim, phys))) if end > iv.last_use => {
                    spilled[victim] = true;
                    assignments[victim] = None;
                    assignments[r] = Some(phys);
                    active[slot] = (iv.last_use, r, phys);
                }
                _ => {
                    spilled[r] = true;
                }
            }
        }
    }

    let mut alloc = Allocation {
        assignments,
        spilled,
        spill_stores: 0,
        spill_reloads: 0,
    };
    for (idx, inst) in insts.iter().enumerate() {
        let _ = idx;
        if let Some(d) = def_of(inst) {
            if alloc.is_spilled(d) {
                alloc.spill_stores += 1;
            }
        }
        for u in uses_of(inst) {
            if alloc.is_spilled(u) {
                alloc.spill_reloads += 1;
            }
        }
    }
    alloc
}

/// Rewrites `insts` with explicit [`VInst::Spill`] / [`VInst::Reload`]
/// instructions for every spilled range. Returns the new sequence and the
/// extra metrics the spill traffic adds per execution.
pub fn insert_spill_code(
    insts: Vec<VInst>,
    alloc: &Allocation,
    cost: &slp_core::CostParams,
) -> (Vec<VInst>, InstMetrics) {
    if alloc.spill_count() == 0 {
        return (insts, InstMetrics::default());
    }
    let mut out = Vec::with_capacity(insts.len() + alloc.spill_count());
    let mut extra = InstMetrics::default();
    for inst in insts {
        for u in uses_of(&inst) {
            if alloc.is_spilled(u) {
                let reload = VInst::Reload { dst: u };
                extra.add(&reload.metrics(cost));
                out.push(reload);
            }
        }
        let def = def_of(&inst);
        out.push(inst);
        if let Some(d) = def {
            if alloc.is_spilled(d) {
                let spill = VInst::Spill { src: d };
                extra.add(&spill.metrics(cost));
                out.push(spill);
            }
        }
    }
    (out, extra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_core::CostParams;
    use slp_ir::{BinOp, ExprShape};

    fn op(dst: u32, a: u32, b: u32) -> VInst {
        VInst::Op {
            dst: VReg(dst),
            shape: ExprShape::Binary(BinOp::Add),
            srcs: vec![VReg(a), VReg(b)],
        }
    }

    fn splat(dst: u32) -> VInst {
        VInst::Splat {
            dst: VReg(dst),
            src: crate::code::SplatSrc::Const(1.0),
            width: 2,
        }
    }

    #[test]
    fn no_spills_when_pressure_fits() {
        let insts = vec![splat(0), splat(1), op(2, 0, 1)];
        let alloc = allocate(&insts, 4);
        assert_eq!(alloc.spill_count(), 0);
        // The simultaneously-live v0 and v1 get distinct registers; v2
        // (defined as they die) may recycle one of them.
        let p0 = alloc.physical(VReg(0)).expect("assigned");
        let p1 = alloc.physical(VReg(1)).expect("assigned");
        assert_ne!(p0, p1);
        assert!(alloc.physical(VReg(2)).is_some());
    }

    #[test]
    fn registers_are_recycled_after_last_use() {
        // v0 dies at inst 2; v3 can reuse its register with only 2 regs.
        let insts = vec![splat(0), splat(1), op(2, 0, 1), splat(3), op(4, 2, 3)];
        let alloc = allocate(&insts, 3);
        assert_eq!(alloc.spill_count(), 0);
    }

    #[test]
    fn excess_pressure_spills_furthest_range() {
        // Three simultaneously-live values on a 2-register machine: the
        // one with the furthest use is spilled.
        let insts = vec![
            splat(0),
            splat(1),
            splat(2),
            op(3, 1, 2),
            op(4, 3, 0), // v0 lives longest
        ];
        let alloc = allocate(&insts, 2);
        assert!(alloc.is_spilled(VReg(0)), "{alloc:?}");
        assert_eq!(alloc.spill_stores, 1);
        assert_eq!(alloc.spill_reloads, 1);
    }

    #[test]
    fn spill_code_brackets_defs_and_uses() {
        let insts = vec![splat(0), splat(1), splat(2), op(3, 1, 2), op(4, 3, 0)];
        let alloc = allocate(&insts, 2);
        let (with_spills, extra) = insert_spill_code(insts, &alloc, &CostParams::intel());
        let spills = with_spills
            .iter()
            .filter(|i| matches!(i, VInst::Spill { .. }))
            .count();
        let reloads = with_spills
            .iter()
            .filter(|i| matches!(i, VInst::Reload { .. }))
            .count();
        assert_eq!(spills, 1);
        assert_eq!(reloads, 1);
        assert!(extra.memory_ops == 2);
        assert!(extra.cycles > 0.0);
        // The reload precedes the use of v0.
        let reload_at = with_spills
            .iter()
            .position(|i| matches!(i, VInst::Reload { .. }))
            .expect("reload");
        let use_at = with_spills
            .iter()
            .position(|i| matches!(i, VInst::Op { dst: VReg(4), .. }))
            .expect("op");
        assert!(reload_at < use_at);
    }

    #[test]
    fn empty_blocks_allocate_trivially() {
        let alloc = allocate(&[], 16);
        assert_eq!(alloc.spill_count(), 0);
    }
}
