//! The interpreter: runs a compiled kernel on the simulated machine,
//! producing the final memory image and the §7 counters.
//!
//! Values always flow through the architectural state (`MachineState`),
//! while *costs* come from each instruction's static classification — a
//! lane whose [`LaneSink`](crate::code::LaneSink) is `Free` still updates
//! the scalar's value (so later consumers observe it) but charges
//! nothing, exactly like a register-allocated temporary.

use std::collections::HashMap;

use slp_core::{CompiledKernel, CostParams, MachineConfig, Replication};
use slp_ir::{ArrayRef, BinOp, Dest, ExprShape, Item, LoopVarId, Operand, Program, StmtId, UnOp};

use crate::code::{InstMetrics, SplatSrc, VInst};
use crate::codegen::{lower_kernel, BlockCode};
use crate::memory::MachineState;

// The VM's runtime error is the workspace-wide typed one; re-exported
// here so `slp_vm::exec::ExecError` keeps resolving.
pub use slp_core::{ExecError, ExecErrorKind};

/// Counters of one run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunStats {
    /// Accumulated instruction metrics.
    pub metrics: InstMetrics,
    /// Loop iterations executed.
    pub iterations: u64,
}

impl RunStats {
    /// Simulated wall-clock seconds on `machine`.
    pub fn seconds(&self, machine: &MachineConfig) -> f64 {
        self.metrics.cycles / (machine.clock_ghz * 1e9)
    }
}

/// The result of executing a kernel.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Final memory image.
    pub state: MachineState,
    /// Accumulated counters.
    pub stats: RunStats,
    /// How many blocks kept vector code after the cost gate.
    pub vectorized_blocks: usize,
    /// Per-block cycle totals (body + preheader executions), hottest
    /// first — a simple profile for `slpc --run`.
    pub block_cycles: Vec<(slp_ir::BlockId, f64)>,
}

/// Executes `kernel` on `machine` with the §4.3 cost gate enabled.
///
/// Runs on the pre-resolved bytecode engine
/// ([`BytecodeKernel`](crate::bytecode::BytecodeKernel)); semantics are
/// bit-identical to [`execute_reference`], which the differential gate
/// proves on every suite kernel.
///
/// # Errors
///
/// Returns [`ExecError`] on out-of-bounds accesses or malformed code.
pub fn execute(kernel: &CompiledKernel, machine: &MachineConfig) -> Result<Outcome, ExecError> {
    execute_gated(kernel, machine, true)
}

/// Executes `kernel` with an explicit cost-gate setting, on the bytecode
/// engine.
///
/// # Errors
///
/// Returns [`ExecError`] on out-of-bounds accesses or malformed code.
pub fn execute_gated(
    kernel: &CompiledKernel,
    machine: &MachineConfig,
    cost_gate: bool,
) -> Result<Outcome, ExecError> {
    crate::memory::check_memory_budget(&kernel.program)?;
    crate::bytecode::BytecodeKernel::compile(kernel, machine, cost_gate)?.run()
}

/// Executes `kernel` on the bytecode engine with every bounds check kept,
/// even for accesses the memory-safety certificate proved safe (cost gate
/// enabled). This is what `slpc --run --no-unchecked` uses, and the
/// baseline the certified-execution bench row is compared against.
///
/// # Errors
///
/// Returns [`ExecError`] on out-of-bounds accesses or malformed code.
pub fn execute_fully_checked(
    kernel: &CompiledKernel,
    machine: &MachineConfig,
) -> Result<Outcome, ExecError> {
    crate::memory::check_memory_budget(&kernel.program)?;
    crate::bytecode::BytecodeKernel::compile_checked(kernel, machine, true)?.run()
}

/// Executes `kernel` on the bytecode engine from an explicit initial
/// memory image instead of the deterministic seeds (cost gate enabled).
///
/// The state must have been allocated for `kernel.program` — start from
/// [`MachineState::seeded`] and overwrite the cells of interest. Used by
/// the symbolic translation validator to replay extracted counterexample
/// inputs.
///
/// # Errors
///
/// Returns [`ExecError`] on out-of-bounds accesses or malformed code.
pub fn execute_with_state(
    kernel: &CompiledKernel,
    machine: &MachineConfig,
    state: MachineState,
) -> Result<Outcome, ExecError> {
    crate::memory::check_memory_budget(&kernel.program)?;
    crate::bytecode::BytecodeKernel::compile(kernel, machine, true)?.run_from(state)
}

/// Executes `kernel` on the original tree-walking interpreter (the
/// reference engine), cost gate enabled.
///
/// Kept as the oracle the bytecode engine is differentially validated
/// against; new code should call [`execute`].
///
/// # Errors
///
/// Returns [`ExecError`] on out-of-bounds accesses.
pub fn execute_reference(
    kernel: &CompiledKernel,
    machine: &MachineConfig,
) -> Result<Outcome, ExecError> {
    execute_gated_reference(kernel, machine, true)
}

/// Executes `kernel` on the reference engine with an explicit cost-gate
/// setting. See [`execute_reference`].
///
/// # Errors
///
/// Returns [`ExecError`] on out-of-bounds accesses.
pub fn execute_gated_reference(
    kernel: &CompiledKernel,
    machine: &MachineConfig,
    cost_gate: bool,
) -> Result<Outcome, ExecError> {
    let state = MachineState::seeded(&kernel.program);
    execute_reference_with_state_gated(kernel, machine, cost_gate, state)
}

/// Executes `kernel` on the reference engine from an explicit initial
/// memory image (cost gate enabled) — the tree-walking counterpart of
/// [`execute_with_state`].
///
/// # Errors
///
/// Returns [`ExecError`] on out-of-bounds accesses.
pub fn execute_reference_with_state(
    kernel: &CompiledKernel,
    machine: &MachineConfig,
    state: MachineState,
) -> Result<Outcome, ExecError> {
    execute_reference_with_state_gated(kernel, machine, true, state)
}

fn execute_reference_with_state_gated(
    kernel: &CompiledKernel,
    machine: &MachineConfig,
    cost_gate: bool,
    state: MachineState,
) -> Result<Outcome, ExecError> {
    crate::memory::check_memory_budget(&kernel.program)?;
    let codes = lower_kernel(kernel, machine, cost_gate);
    let vectorized_blocks = codes.iter().filter(|(_, c)| c.vectorized).count();
    // Map each block's first statement id to its code, for dispatch while
    // walking the item tree.
    let mut by_first_stmt: HashMap<StmtId, (slp_ir::BlockId, &BlockCode)> = HashMap::new();
    for (info, (id, code)) in kernel.program.blocks().iter().zip(&codes) {
        debug_assert_eq!(info.id, *id);
        by_first_stmt.insert(info.block.stmts()[0].id(), (*id, code));
    }

    let mut ex = Executor {
        program: &kernel.program,
        machine,
        state,
        stats: RunStats::default(),
        regs: Vec::new(),
        env: Vec::new(),
        first_iteration: true,
        block_cycles: HashMap::new(),
    };

    for r in &kernel.replications {
        ex.populate(r)?;
    }
    ex.run_items(kernel.program.items(), &by_first_stmt)?;

    let mut block_cycles: Vec<(slp_ir::BlockId, f64)> = ex.block_cycles.into_iter().collect();
    block_cycles.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
    Ok(Outcome {
        state: ex.state,
        stats: ex.stats,
        vectorized_blocks,
        block_cycles,
    })
}

struct Executor<'a> {
    program: &'a Program,
    machine: &'a MachineConfig,
    state: MachineState,
    stats: RunStats,
    regs: Vec<Vec<f64>>,
    env: Vec<(LoopVarId, i64)>,
    /// Whether the current innermost loop is on its first iteration
    /// (drives [`VInst::CarriedLoad`] semantics).
    first_iteration: bool,
    /// Accumulated cycles per block.
    block_cycles: HashMap<slp_ir::BlockId, f64>,
}

/// Performs one replication's population pass (§5.2) on `state`, charging
/// copy costs into `stats`. Shared verbatim by the reference and bytecode
/// engines so replication semantics (including error strings and the
/// single bulk metric) cannot diverge.
pub(crate) fn populate_replication(
    program: &Program,
    cost: &CostParams,
    state: &mut MachineState,
    stats: &mut RunStats,
    r: &Replication,
) -> Result<(), ExecError> {
    let mut env: Vec<(LoopVarId, i64)> = Vec::new();
    populate_dims(program, state, r, 0, &mut env)?;
    let copies = r.copy_count() as f64;
    stats.metrics.add(&InstMetrics {
        cycles: copies * (cost.scalar_load + cost.scalar_store),
        dynamic_instructions: 2 * copies as u64,
        memory_ops: 2 * copies as u64,
        memory_cycles: copies * (cost.scalar_load + cost.scalar_store),
        ..InstMetrics::default()
    });
    Ok(())
}

fn populate_dims(
    program: &Program,
    state: &mut MachineState,
    r: &Replication,
    dim: usize,
    env: &mut Vec<(LoopVarId, i64)>,
) -> Result<(), ExecError> {
    if dim == r.loops.len() {
        for (p, lane) in r.lanes.iter().enumerate() {
            let src_idx = lane.eval(env);
            let src_info = program.array(r.source);
            if !src_info.in_bounds(&src_idx) {
                return Err(ExecError::out_of_bounds(format!(
                    "replication read {}{:?} out of bounds",
                    src_info.name, src_idx
                )));
            }
            let off = src_info.linearize(&src_idx) as usize;
            let value = state
                .load_array(r.source, off)
                .ok_or_else(|| ExecError::out_of_bounds("replication source out of bounds"))?;
            let dst_off = r.dest_exprs[p].eval(env);
            if dst_off < 0 || !state.store_array(r.dest, dst_off as usize, value) {
                return Err(ExecError::out_of_bounds(format!(
                    "replication write {dst_off} out of bounds"
                )));
            }
        }
        return Ok(());
    }
    let h = r.loops[dim];
    let mut v = h.lower;
    while v < h.upper {
        env.push((h.var, v));
        populate_dims(program, state, r, dim + 1, env)?;
        env.pop();
        v += h.step;
    }
    Ok(())
}

impl<'a> Executor<'a> {
    /// Performs one replication's population pass (§5.2), charging copy
    /// costs.
    fn populate(&mut self, r: &Replication) -> Result<(), ExecError> {
        populate_replication(
            self.program,
            &self.machine.cost,
            &mut self.state,
            &mut self.stats,
            r,
        )
    }

    fn run_items(
        &mut self,
        items: &[Item],
        codes: &HashMap<StmtId, (slp_ir::BlockId, &BlockCode)>,
    ) -> Result<(), ExecError> {
        let mut idx = 0;
        while idx < items.len() {
            match &items[idx] {
                Item::Stmt(first) => {
                    // One static basic block = this maximal statement run.
                    let mut end = idx + 1;
                    while end < items.len() && matches!(items[end], Item::Stmt(_)) {
                        end += 1;
                    }
                    let &(bid, code) = codes.get(&first.id()).ok_or_else(|| {
                        ExecError::malformed(format!(
                            "no code for block starting at {}",
                            first.id()
                        ))
                    })?;
                    let before = self.stats.metrics.cycles;
                    self.run_block(code)?;
                    *self.block_cycles.entry(bid).or_insert(0.0) +=
                        self.stats.metrics.cycles - before;
                    idx = end;
                }
                Item::Loop(l) => {
                    // Preheaders of blocks directly inside this loop run
                    // once per loop entry (hoisted invariant packs). Only
                    // the first statement of each maximal run keys a
                    // block, so the lookup naturally skips the rest.
                    if l.header.lower < l.header.upper {
                        for body_item in &l.body {
                            if let Item::Stmt(first) = body_item {
                                if let Some(&(bid, code)) = codes.get(&first.id()) {
                                    let before = self.stats.metrics.cycles;
                                    self.run_insts(&code.preheader)?;
                                    *self.block_cycles.entry(bid).or_insert(0.0) +=
                                        self.stats.metrics.cycles - before;
                                }
                            }
                        }
                    }
                    let saved_first = self.first_iteration;
                    let mut v = l.header.lower;
                    while v < l.header.upper {
                        self.first_iteration = v == l.header.lower;
                        self.env.push((l.header.var, v));
                        self.run_items(&l.body, codes)?;
                        self.env.pop();
                        v += l.header.step;
                        // Loop control: increment + branch.
                        self.stats.iterations += 1;
                        self.stats.metrics.add(&InstMetrics {
                            cycles: self.machine.cost.loop_overhead,
                            dynamic_instructions: 2,
                            ..InstMetrics::default()
                        });
                    }
                    self.first_iteration = saved_first;
                    idx += 1;
                }
            }
        }
        Ok(())
    }

    fn run_block(&mut self, code: &BlockCode) -> Result<(), ExecError> {
        self.run_insts(&code.insts)
    }

    fn run_insts(&mut self, insts: &[VInst]) -> Result<(), ExecError> {
        for inst in insts {
            // Carried loads are the one iteration-dependent instruction:
            // a real load on the first iteration, a register move after.
            if let VInst::CarriedLoad { refs, class, .. } = inst {
                if self.first_iteration {
                    let as_load = VInst::Load {
                        dst: crate::code::VReg(0), // cost lookup only
                        refs: refs.clone(),
                        class: *class,
                    };
                    self.stats.metrics.add(&as_load.metrics(&self.machine.cost));
                } else {
                    self.stats.metrics.add(&inst.metrics(&self.machine.cost));
                }
            } else {
                self.stats.metrics.add(&inst.metrics(&self.machine.cost));
            }
            self.step(inst)?;
        }
        Ok(())
    }

    fn reg_mut(&mut self, r: crate::code::VReg) -> &mut Vec<f64> {
        let i = r.0 as usize;
        if self.regs.len() <= i {
            self.regs.resize(i + 1, Vec::new());
        }
        &mut self.regs[i]
    }

    fn reg(&self, r: crate::code::VReg) -> Result<&Vec<f64>, ExecError> {
        self.regs
            .get(r.0 as usize)
            .filter(|v| !v.is_empty())
            .ok_or_else(|| ExecError::undefined_register(format!("read of undefined register {r}")))
    }

    fn step(&mut self, inst: &VInst) -> Result<(), ExecError> {
        match inst {
            VInst::Scalar { stmt, .. } => self.scalar_stmt(stmt),
            VInst::Load { dst, refs, .. } => {
                let values = refs
                    .iter()
                    .map(|r| self.read_operand(&Operand::Array(r.clone())))
                    .collect::<Result<Vec<f64>, _>>()?;
                *self.reg_mut(*dst) = values;
                Ok(())
            }
            VInst::Store { src, refs, .. } => {
                let values = self.reg(*src)?.clone();
                for (r, &v) in refs.iter().zip(&values) {
                    self.write_array(r, v)?;
                }
                Ok(())
            }
            VInst::PackScalars { dst, vars, .. } => {
                let values: Vec<f64> = vars.iter().map(|&v| self.state.scalar(v)).collect();
                *self.reg_mut(*dst) = values;
                Ok(())
            }
            VInst::UnpackScalars { src, vars, .. } => {
                let values = self.reg(*src)?.clone();
                for (&v, &x) in vars.iter().zip(&values) {
                    let ty = slp_ir::TypeEnv::scalar_type(self.program, v);
                    self.state.set_scalar(v, ty.coerce(x));
                }
                Ok(())
            }
            VInst::ConstVec { dst, values } => {
                *self.reg_mut(*dst) = values.clone();
                Ok(())
            }
            VInst::Splat { dst, src, width } => {
                let v = match src {
                    SplatSrc::Const(c) => *c,
                    SplatSrc::Scalar { var, .. } => self.state.scalar(*var),
                };
                *self.reg_mut(*dst) = vec![v; *width];
                Ok(())
            }
            VInst::Permute { dst, src, perm } => {
                let src_vals = self.reg(*src)?.clone();
                let out: Vec<f64> = perm.iter().map(|&j| src_vals[j]).collect();
                *self.reg_mut(*dst) = out;
                Ok(())
            }
            // Spill traffic is bookkeeping: values stay in the virtual
            // registers, only the cycle/memory accounting changes.
            VInst::Spill { .. } | VInst::Reload { .. } => Ok(()),
            VInst::CarriedLoad {
                dst,
                refs,
                carried_from,
                ..
            } => {
                let values = if self.first_iteration {
                    refs.iter()
                        .map(|r| self.read_operand(&Operand::Array(r.clone())))
                        .collect::<Result<Vec<f64>, _>>()?
                } else {
                    self.reg(*carried_from)?.clone()
                };
                *self.reg_mut(*dst) = values;
                Ok(())
            }
            VInst::Op { dst, shape, srcs } => {
                let lanes = self.reg(srcs[0])?.len();
                let mut out = Vec::with_capacity(lanes);
                for k in 0..lanes {
                    let vals: Vec<f64> = srcs
                        .iter()
                        .map(|&r| Ok(self.reg(r)?[k]))
                        .collect::<Result<_, ExecError>>()?;
                    out.push(apply_shape(*shape, &vals));
                }
                *self.reg_mut(*dst) = out;
                Ok(())
            }
        }
    }

    fn scalar_stmt(&mut self, stmt: &slp_ir::Statement) -> Result<(), ExecError> {
        let vals: Vec<f64> = stmt
            .expr()
            .operands()
            .iter()
            .map(|o| self.read_operand(o))
            .collect::<Result<_, _>>()?;
        let result = apply_shape(stmt.expr().shape(), &vals);
        match stmt.dest() {
            Dest::Scalar(v) => {
                let ty = slp_ir::TypeEnv::scalar_type(self.program, *v);
                self.state.set_scalar(*v, ty.coerce(result));
                Ok(())
            }
            Dest::Array(r) => self.write_array(r, result),
        }
    }

    fn array_offset(&self, r: &ArrayRef) -> Result<usize, ExecError> {
        let idx = r.access.eval(&self.env);
        let info = self.program.array(r.array);
        if !info.in_bounds(&idx) {
            return Err(ExecError::out_of_bounds(format!(
                "{}{:?} out of bounds (dims {:?})",
                info.name, idx, info.dims
            )));
        }
        Ok(info.linearize(&idx) as usize)
    }

    fn read_operand(&self, op: &Operand) -> Result<f64, ExecError> {
        match op {
            Operand::Const(c) => Ok(*c),
            Operand::Scalar(v) => Ok(self.state.scalar(*v)),
            Operand::Array(r) => {
                let off = self.array_offset(r)?;
                self.state
                    .load_array(r.array, off)
                    .ok_or_else(|| ExecError::out_of_bounds("array load out of bounds"))
            }
        }
    }

    fn write_array(&mut self, r: &ArrayRef, value: f64) -> Result<(), ExecError> {
        let off = self.array_offset(r)?;
        let value = self.program.array(r.array).ty.coerce(value);
        if self.state.store_array(r.array, off, value) {
            Ok(())
        } else {
            Err(ExecError::out_of_bounds("array store out of bounds"))
        }
    }
}

/// Applies an operator shape to positional operand values. Shared by the
/// reference and bytecode engines, and by the symbolic translation
/// validator's concrete counterexample evaluation — a single definition
/// so operator semantics cannot drift between prover and executor.
pub fn apply_shape(shape: ExprShape, vals: &[f64]) -> f64 {
    match shape {
        ExprShape::Copy => vals[0],
        ExprShape::Unary(op) => match op {
            UnOp::Neg => -vals[0],
            UnOp::Abs => vals[0].abs(),
            UnOp::Sqrt => vals[0].sqrt(),
        },
        ExprShape::Binary(op) => match op {
            BinOp::Add => vals[0] + vals[1],
            BinOp::Sub => vals[0] - vals[1],
            BinOp::Mul => vals[0] * vals[1],
            BinOp::Div => vals[0] / vals[1],
            BinOp::Min => vals[0].min(vals[1]),
            BinOp::Max => vals[0].max(vals[1]),
        },
        ExprShape::MulAdd => vals[0] + vals[1] * vals[2],
        ExprShape::Select(op) => {
            if op.apply(vals[0], vals[1]) {
                vals[2]
            } else {
                vals[3]
            }
        }
    }
}

/// Convenience: compiles `program` with [`slp_core::Strategy::Scalar`]
/// semantics on `machine` and runs it — the baseline every figure
/// normalizes to.
///
/// # Errors
///
/// Returns [`ExecError`] on out-of-bounds accesses.
pub fn run_scalar(program: &Program, machine: &MachineConfig) -> Result<Outcome, ExecError> {
    let cfg = slp_core::SlpConfig::for_machine(machine.clone(), slp_core::Strategy::Scalar);
    let kernel = slp_core::compile(program, &cfg);
    execute(&kernel, machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_core::{compile, SlpConfig, Strategy};

    fn machine() -> MachineConfig {
        MachineConfig::intel_dunnington()
    }

    fn run(src: &str, strategy: Strategy, layout: bool) -> Outcome {
        let p = slp_lang::compile(src).unwrap();
        let mut cfg = SlpConfig::for_machine(machine(), strategy);
        if layout {
            cfg = cfg.with_layout();
        }
        let k = compile(&p, &cfg);
        execute(&k, &machine()).unwrap()
    }

    const KERNEL: &str = "kernel k {
        const N = 32;
        array A: f64[2*N+2]; array B: f64[4*N+8];
        scalar a, b: f64;
        for i in 0..N {
            a = A[2*i];
            b = A[2*i+1];
            A[2*i] = a + B[4*i] * a;
            A[2*i+1] = b + B[4*i+2] * b;
        }
    }";

    #[test]
    fn vectorized_run_matches_scalar_run() {
        let scalar = run(KERNEL, Strategy::Scalar, false);
        for strategy in [Strategy::Native, Strategy::Baseline, Strategy::Holistic] {
            let vectorized = run(KERNEL, strategy, false);
            assert!(
                vectorized.state.arrays_bitwise_eq(&scalar.state, 2),
                "{strategy:?} diverged from scalar execution"
            );
        }
    }

    #[test]
    fn layout_run_matches_scalar_run() {
        let scalar = run(KERNEL, Strategy::Scalar, false);
        let laid_out = run(KERNEL, Strategy::Holistic, true);
        assert!(laid_out.state.arrays_bitwise_eq(&scalar.state, 2));
    }

    #[test]
    fn holistic_is_faster_than_scalar() {
        let scalar = run(KERNEL, Strategy::Scalar, false);
        let global = run(KERNEL, Strategy::Holistic, false);
        assert!(
            global.stats.metrics.cycles < scalar.stats.metrics.cycles,
            "global {} vs scalar {}",
            global.stats.metrics.cycles,
            scalar.stats.metrics.cycles
        );
        assert!(global.vectorized_blocks > 0);
    }

    #[test]
    fn iteration_and_instruction_counters_accumulate() {
        let scalar = run(KERNEL, Strategy::Scalar, false);
        assert_eq!(scalar.stats.iterations, 32);
        // 4 statements × 32 iterations, ≥ 1 instruction each, plus loop
        // control.
        assert!(scalar.stats.metrics.dynamic_instructions > 32 * 4);
        assert!(scalar.stats.metrics.packing_ops == 0);
        assert!(scalar.stats.seconds(&machine()) > 0.0);
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let src = "kernel bad { array A: f64[4]; scalar x: f64;
                    for i in 0..8 { x = A[i]; A[i] = x; } }";
        let p = slp_lang::compile(src).unwrap();
        let cfg = SlpConfig::for_machine(machine(), Strategy::Scalar);
        let k = compile(&p, &cfg);
        let err = execute(&k, &machine()).unwrap_err();
        assert!(err.to_string().contains("out of bounds"));
    }

    #[test]
    fn apply_shape_covers_all_operators() {
        use slp_ir::{BinOp, ExprShape, UnOp};
        let t = apply_shape;
        assert_eq!(t(ExprShape::Copy, &[2.0]), 2.0);
        assert_eq!(t(ExprShape::Unary(UnOp::Neg), &[2.0]), -2.0);
        assert_eq!(t(ExprShape::Unary(UnOp::Sqrt), &[16.0]), 4.0);
        assert_eq!(t(ExprShape::Binary(BinOp::Sub), &[5.0, 3.0]), 2.0);
        assert_eq!(t(ExprShape::Binary(BinOp::Max), &[5.0, 3.0]), 5.0);
        assert_eq!(t(ExprShape::MulAdd, &[1.0, 2.0, 3.0]), 7.0);
        use slp_ir::CmpOp;
        assert_eq!(t(ExprShape::Select(CmpOp::Lt), &[1.0, 2.0, 8.0, 9.0]), 8.0);
        assert_eq!(t(ExprShape::Select(CmpOp::Lt), &[2.0, 2.0, 8.0, 9.0]), 9.0);
        assert_eq!(t(ExprShape::Select(CmpOp::Ne), &[2.0, 2.0, 8.0, 9.0]), 9.0);
        // NaN condition: ordered comparisons fall through to the else arm.
        assert_eq!(
            t(ExprShape::Select(CmpOp::Ge), &[f64::NAN, 0.0, 8.0, 9.0]),
            9.0
        );
    }

    #[test]
    fn replication_preserves_semantics_and_charges_cost() {
        // Strided reads re-swept by an outer loop: the layout stage
        // replicates, and results must stay identical.
        let src = "kernel strided {
            const N = 64;
            array A: f64[4*N+4]; array OUT: f64[2*N];
            scalar c, d: f64;
            for t in 0..8 {
                for i in 0..N {
                    c = A[4*i] * 2.0;
                    d = A[4*i+3] * 2.0;
                    OUT[2*i] = c + 1.0;
                    OUT[2*i+1] = d + 1.0;
                }
            }
        }";
        let p = slp_lang::compile(src).unwrap();
        let m = machine();
        let scalar = {
            let cfg = SlpConfig::for_machine(m.clone(), Strategy::Scalar);
            execute(&compile(&p, &cfg), &m).unwrap()
        };
        let mut cfg = SlpConfig::for_machine(m.clone(), Strategy::Holistic).with_layout();
        cfg.unroll = 1;
        let k = compile(&p, &cfg);
        assert!(!k.replications.is_empty(), "expected a replication");
        let out = execute(&k, &m).unwrap();
        assert!(out.state.arrays_bitwise_eq(&scalar.state, 2));
    }

    #[test]
    fn temps_do_not_round_trip_through_memory_costs() {
        // Same computation, one with temps (free) and one with an
        // exposed accumulator chain (memory): the temp version must be
        // cheaper under the scalar strategy.
        let temps = run(
            "kernel a { array A: f64[32]; scalar t: f64;
             for i in 0..32 { t = A[i]; A[i] = t * 2.0; } }",
            Strategy::Scalar,
            false,
        );
        let exposed = run(
            "kernel b { array A: f64[32]; scalar t: f64;
             for i in 0..32 { A[i] = t * 2.0; t = A[i]; } }",
            Strategy::Scalar,
            false,
        );
        assert!(temps.stats.metrics.cycles < exposed.stats.metrics.cycles);
    }
}
