//! Vector code generation: block schedules → vector instructions.
//!
//! This is the post-processing backend of the framework (paper Figure 3).
//! It walks a scheduled block, tracking which ordered packs are resident
//! in (virtual) vector registers, and emits:
//!
//! * nothing, when a needed pack is already live in the right order
//!   (a *direct* superword reuse),
//! * one [`VInst::Permute`], when the pack is live with another lane order
//!   (an *indirect* reuse — register shuffle, no memory traffic),
//! * a load/pack sequence otherwise: one aligned or unaligned vector load
//!   for contiguous array packs, a per-lane gather for scattered array
//!   packs, and insert shuffles (plus loads for memory-resident lanes)
//!   for scalar packs.
//!
//! Destination packs are written back analogously; scalar destination
//! lanes are charged only for what they feed (nothing for pure register
//! reuse, an extract shuffle for later scalar consumers, a store for
//! upward-exposed scalars). Finally the §4.3 cost-model gate compares the
//! static cycle estimate of the vector code against the scalar code and
//! keeps the scalar version when vectorization would not pay ("we skip
//! the current basic block").

use slp_analysis::OperandKey;
use slp_core::{BlockSchedule, CompiledKernel, MachineConfig, ScalarLayout, ScheduledItem};
use slp_ir::{
    pack_is_aligned_in, pack_is_contiguous, ArrayRef, BasicBlock, Dest, LoopHeader, Operand,
    Program, Statement, StmtId, TypeEnv, VarId,
};

use crate::code::{AccessClass, InstMetrics, LaneSink, ScalarPackClass, SplatSrc, VInst, VReg};

/// The generated code of one basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockCode {
    /// Loop-invariant materializations, executed once per entry of the
    /// enclosing innermost loop (empty for scalar or top-level blocks).
    pub preheader: Vec<VInst>,
    /// Instructions, executed once per block entry (per loop iteration).
    pub insts: Vec<VInst>,
    /// Whether the block kept any vector instructions (false after the
    /// cost gate reverts to scalar).
    pub vectorized: bool,
    /// Static per-execution metrics of `insts` (the loop body only).
    pub static_metrics: InstMetrics,
    /// Static metrics of the preheader (amortized over the loop's trip
    /// count at run time).
    pub preheader_metrics: InstMetrics,
}

/// Lowers one scheduled block to vector code, applying the cost gate when
/// `cost_gate` is set. `exposed` flags upward-exposed (memory-resident)
/// scalars, as computed by
/// [`Program::upward_exposed_scalars`].
#[allow(clippy::too_many_arguments)]
pub fn lower_block(
    block: &BasicBlock,
    schedule: &BlockSchedule,
    program: &Program,
    layout: &ScalarLayout,
    machine: &MachineConfig,
    loops: &[LoopHeader],
    exposed: &[bool],
    permuted_reuse: bool,
    cross_iteration_reuse: bool,
    cost_gate: bool,
) -> BlockCode {
    let mut gen = Codegen {
        program,
        layout,
        machine,
        loops,
        exposed,
        permuted_reuse,
        insts: Vec::new(),
        regs: Vec::new(),
        next_reg: 0,
    };
    let items = schedule.items();
    for (idx, item) in items.iter().enumerate() {
        match item {
            ScheduledItem::Single(s) => gen.scalar_stmt(block, *s),
            ScheduledItem::Superword(sw) => gen.superword(block, sw.lanes(), &items[idx + 1..]),
        }
    }
    // Post-processing (paper Figure 3): hoist loop-invariant pack
    // materializations to a preheader, then allocate registers over the
    // combined sequence so hoisted values keep their registers across
    // the body. Spill code lands in whichever segment triggers it, and
    // the cost gate judges the real (amortized) price.
    let (pre_raw, mut body_raw) =
        crate::hoist::hoist_invariant_packs(gen.insts, program, loops.last());
    if cross_iteration_reuse {
        crate::carry::apply_cross_iteration_reuse(&mut body_raw, program, loops.last());
    }
    let combined: Vec<VInst> = pre_raw
        .iter()
        .cloned()
        .chain(body_raw.iter().cloned())
        .collect();
    let alloc = crate::regalloc::allocate(&combined, machine.vector_regs);
    let (preheader, _) = crate::regalloc::insert_spill_code(pre_raw, &alloc, &machine.cost);
    let (vector_code, _) = crate::regalloc::insert_spill_code(body_raw, &alloc, &machine.cost);

    let scalar_code: Vec<VInst> = block.iter().map(|s| scalar_vinst(s, exposed)).collect();
    let cost = |insts: &[VInst]| {
        let mut m = InstMetrics::default();
        for i in insts {
            m.add(&i.metrics(&machine.cost));
        }
        m
    };
    let vm = cost(&vector_code);
    let pm = cost(&preheader);
    let sm = cost(&scalar_code);
    // Amortize the preheader over the innermost loop's trip count.
    let trips = loops.last().map(|h| h.trip_count().max(1)).unwrap_or(1) as f64;
    if cost_gate && vm.cycles + pm.cycles / trips >= sm.cycles {
        return BlockCode {
            preheader: Vec::new(),
            insts: scalar_code,
            vectorized: false,
            static_metrics: sm,
            preheader_metrics: InstMetrics::default(),
        };
    }
    if schedule.is_vectorized() {
        BlockCode {
            preheader,
            insts: vector_code,
            vectorized: true,
            static_metrics: vm,
            preheader_metrics: pm,
        }
    } else {
        BlockCode {
            preheader: Vec::new(),
            insts: scalar_code,
            vectorized: false,
            static_metrics: sm,
            preheader_metrics: InstMetrics::default(),
        }
    }
}

/// Builds the scalar instruction for `stmt` with its real memory traffic:
/// array accesses always, scalar accesses only when upward-exposed.
fn scalar_vinst(stmt: &Statement, exposed: &[bool]) -> VInst {
    let mem_loads = stmt
        .uses()
        .iter()
        .filter(|o| match o {
            Operand::Array(_) => true,
            Operand::Scalar(v) => exposed[v.index()],
            Operand::Const(_) => false,
        })
        .count() as u32;
    let mem_stores = match stmt.dest() {
        Dest::Array(_) => 1,
        Dest::Scalar(v) => u32::from(exposed[v.index()]),
    };
    VInst::Scalar {
        stmt: stmt.clone(),
        mem_loads,
        mem_stores,
    }
}

/// Lowers every scheduled block of a compiled kernel, keyed by block id.
pub fn lower_kernel(
    kernel: &CompiledKernel,
    machine: &MachineConfig,
    cost_gate: bool,
) -> Vec<(slp_ir::BlockId, BlockCode)> {
    // Indirect (permuted) superword reuse is this paper's contribution;
    // the baseline algorithms neglect it (§4.3: "... which is neglected
    // in the original SLP algorithm"), so their backends only get direct
    // reuse. The Optimal solver prices permutes with the same tables the
    // holistic optimizer uses, so its code gets the same treatment.
    let permuted_reuse = matches!(
        kernel.config.strategy,
        slp_core::Strategy::Holistic | slp_core::Strategy::Optimal
    );
    lower_kernel_with(kernel, machine, cost_gate, permuted_reuse)
}

/// [`lower_kernel`] with an explicit permuted-reuse setting (ablation
/// support: measure what indirect reuse alone is worth).
pub fn lower_kernel_with(
    kernel: &CompiledKernel,
    machine: &MachineConfig,
    cost_gate: bool,
    permuted_reuse: bool,
) -> Vec<(slp_ir::BlockId, BlockCode)> {
    let exposed = kernel.program.upward_exposed_scalars();
    kernel
        .program
        .blocks()
        .iter()
        .map(|info| {
            let code = match kernel.schedule_of(info.id) {
                Some(sched) => lower_block(
                    &info.block,
                    sched,
                    &kernel.program,
                    &kernel.scalar_layout,
                    machine,
                    &info.loops,
                    &exposed,
                    permuted_reuse,
                    kernel.config.cross_iteration_reuse,
                    cost_gate,
                ),
                None => {
                    let insts: Vec<VInst> = info
                        .block
                        .iter()
                        .map(|s| scalar_vinst(s, &exposed))
                        .collect();
                    let mut m = InstMetrics::default();
                    for i in &insts {
                        m.add(&i.metrics(&machine.cost));
                    }
                    BlockCode {
                        preheader: Vec::new(),
                        insts,
                        vectorized: false,
                        static_metrics: m,
                        preheader_metrics: InstMetrics::default(),
                    }
                }
            };
            (info.id, code)
        })
        .collect()
}

struct Codegen<'a> {
    program: &'a Program,
    layout: &'a ScalarLayout,
    machine: &'a MachineConfig,
    loops: &'a [LoopHeader],
    exposed: &'a [bool],
    permuted_reuse: bool,
    insts: Vec<VInst>,
    /// Ordered packs resident in registers, oldest first.
    regs: Vec<(Vec<OperandKey>, VReg)>,
    next_reg: u32,
}

impl<'a> Codegen<'a> {
    fn fresh(&mut self) -> VReg {
        let r = VReg(self.next_reg);
        self.next_reg += 1;
        r
    }

    fn register_pack(&mut self, keys: Vec<OperandKey>, reg: VReg) {
        self.regs.retain(|(k, _)| *k != keys);
        self.regs.push((keys, reg));
        if self.regs.len() > self.machine.vector_regs {
            self.regs.remove(0);
        }
    }

    fn invalidate(&mut self, written: &Operand) {
        self.regs
            .retain(|(keys, _)| !keys.iter().any(|k| key_overlaps(written, k)));
    }

    fn scalar_stmt(&mut self, block: &BasicBlock, id: StmtId) {
        let stmt = block.stmt(id).expect("stmt in block");
        self.invalidate(&stmt.def());
        self.insts.push(scalar_vinst(stmt, self.exposed));
    }

    fn superword(&mut self, block: &BasicBlock, lanes: &[StmtId], rest: &[ScheduledItem]) {
        let stmts: Vec<&Statement> = lanes
            .iter()
            .map(|&id| block.stmt(id).expect("lane in block"))
            .collect();
        let arity = stmts[0].expr().arity();

        // Materialize each source pack.
        let mut srcs = Vec::with_capacity(arity);
        for k in 0..arity {
            let ops: Vec<Operand> = stmts
                .iter()
                .map(|s| s.expr().operands()[k].clone())
                .collect();
            srcs.push(self.materialize(&ops));
        }

        // The SIMD operation itself.
        let dst = self.fresh();
        self.insts.push(VInst::Op {
            dst,
            shape: stmts[0].expr().shape(),
            srcs,
        });

        // Write back the destination pack.
        let dest_ops: Vec<Operand> = stmts.iter().map(|s| s.def()).collect();
        for op in &dest_ops {
            self.invalidate(op);
        }
        self.emit_dest(&stmts, dst, block, rest);
        // `dst` holds the pre-coercion lane values; the store coerces into
        // memory (integer truncation/wrapping happens exactly once, at the
        // store). Recording `dst` as the home of the destination pack is
        // only sound when coercion is the identity — float element types —
        // otherwise a later reuse would observe un-truncated values.
        let reusable = dest_ops.iter().all(|op| {
            let ty = match op {
                Operand::Array(r) => self.program.array(r.array).ty,
                Operand::Scalar(v) => self.program.scalar(*v).ty,
                Operand::Const(_) => return false,
            };
            ty.is_float()
        });
        if reusable {
            let keys: Vec<OperandKey> = dest_ops.iter().map(OperandKey::of).collect();
            self.register_pack(keys, dst);
        }
    }

    /// Emits the destination write-back of a superword statement.
    fn emit_dest(
        &mut self,
        stmts: &[&Statement],
        src: VReg,
        block: &BasicBlock,
        rest: &[ScheduledItem],
    ) {
        match stmts[0].dest() {
            Dest::Array(_) => {
                let refs: Vec<ArrayRef> = stmts
                    .iter()
                    .map(|s| match s.dest() {
                        Dest::Array(r) => r.clone(),
                        Dest::Scalar(_) => unreachable!("isomorphic dests"),
                    })
                    .collect();
                let class = self.classify_array(&refs);
                self.insts.push(VInst::Store { src, refs, class });
            }
            Dest::Scalar(_) => {
                let vars: Vec<VarId> = stmts
                    .iter()
                    .map(|s| match s.dest() {
                        Dest::Scalar(v) => *v,
                        Dest::Array(_) => unreachable!("isomorphic dests"),
                    })
                    .collect();
                let sinks: Vec<LaneSink> = vars
                    .iter()
                    .map(|&v| {
                        if self.exposed[v.index()] {
                            LaneSink::Memory
                        } else if read_by_later_single(v, block, rest) {
                            LaneSink::Shuffle
                        } else {
                            LaneSink::Free
                        }
                    })
                    .collect();
                let class =
                    self.scalar_pack_class(&vars, sinks.iter().all(|s| *s == LaneSink::Memory));
                self.insts.push(VInst::UnpackScalars {
                    src,
                    vars,
                    sinks,
                    class,
                });
            }
        }
    }

    /// `VectorMem` when every lane is memory-resident and the §5.1 layout
    /// placed the pack contiguously and aligned.
    fn scalar_pack_class(&self, vars: &[VarId], all_mem: bool) -> ScalarPackClass {
        let elem = self.program.scalar_type(vars[0]).size_bytes();
        if all_mem
            && self.layout.is_optimized()
            && self.layout.pack_is_contiguous_aligned(vars, elem)
        {
            ScalarPackClass::VectorMem
        } else {
            ScalarPackClass::PerLane
        }
    }

    fn classify_array(&self, refs: &[ArrayRef]) -> AccessClass {
        let ptrs: Vec<&ArrayRef> = refs.iter().collect();
        if pack_is_contiguous(&ptrs) {
            if pack_is_aligned_in(&ptrs, self.program, self.loops) {
                AccessClass::Aligned
            } else {
                AccessClass::Unaligned
            }
        } else {
            AccessClass::Gather
        }
    }

    /// Returns a register holding `ops` in lane order, emitting whatever
    /// reuse, permutation or packing code is needed.
    fn materialize(&mut self, ops: &[Operand]) -> VReg {
        // Constant lanes never touch the register tracker.
        if ops.iter().all(|o| matches!(o, Operand::Const(_))) {
            let values: Vec<f64> = ops
                .iter()
                .map(|o| match o {
                    Operand::Const(c) => *c,
                    _ => unreachable!("checked all-const"),
                })
                .collect();
            let dst = self.fresh();
            if values.windows(2).all(|w| w[0] == w[1]) {
                self.insts.push(VInst::Splat {
                    dst,
                    src: SplatSrc::Const(values[0]),
                    width: values.len(),
                });
            } else {
                self.insts.push(VInst::ConstVec { dst, values });
            }
            return dst;
        }

        let keys: Vec<OperandKey> = ops.iter().map(OperandKey::of).collect();

        // Direct reuse: exact ordered pack already live.
        if let Some(&(_, reg)) = self.regs.iter().find(|(k, _)| *k == keys) {
            return reg;
        }

        // Indirect reuse: same content, different order — one permute
        // (the holistic framework's contribution; disabled for the
        // baselines).
        if let Some((src_keys, src_reg)) = self
            .regs
            .iter()
            .rev()
            .filter(|_| self.permuted_reuse)
            .find(|(k, _)| same_multiset(k, &keys))
            .cloned()
        {
            let perm = permutation_from(&src_keys, &keys);
            let dst = self.fresh();
            self.insts.push(VInst::Permute {
                dst,
                src: src_reg,
                perm,
            });
            self.register_pack(keys, dst);
            return dst;
        }

        // Mandatory packing.
        let dst = self.fresh();
        let inst = self.pack_from_homes(ops, dst);
        self.insts.push(inst);
        self.register_pack(keys, dst);
        dst
    }

    /// Builds the cheapest instruction assembling `ops` from their homes
    /// (array memory, scalar registers, or the §5.1 scalar frame).
    fn pack_from_homes(&mut self, ops: &[Operand], dst: VReg) -> VInst {
        // Scalar splat: one broadcast shuffle (plus a load if exposed).
        if let Some(v) = ops[0].as_scalar() {
            if ops.iter().all(|o| o.as_scalar() == Some(v)) {
                return VInst::Splat {
                    dst,
                    src: SplatSrc::Scalar {
                        var: v,
                        from_memory: self.exposed[v.index()],
                    },
                    width: ops.len(),
                };
            }
        }
        match &ops[0] {
            Operand::Array(_) => {
                let refs: Vec<ArrayRef> = ops
                    .iter()
                    .map(|o| o.as_array().expect("uniform operand kinds").clone())
                    .collect();
                let class = self.classify_array(&refs);
                VInst::Load { dst, refs, class }
            }
            Operand::Scalar(_) => {
                let vars: Vec<VarId> = ops
                    .iter()
                    .map(|o| o.as_scalar().expect("uniform operand kinds"))
                    .collect();
                let lane_mem: Vec<bool> = vars.iter().map(|v| self.exposed[v.index()]).collect();
                let class = self.scalar_pack_class(&vars, lane_mem.iter().all(|&m| m));
                VInst::PackScalars {
                    dst,
                    vars,
                    lane_mem,
                    class,
                }
            }
            Operand::Const(_) => unreachable!("const packs handled above"),
        }
    }
}

/// Whether scalar `v` is read by a later `Single` item of this block's
/// schedule before being redefined (so its lane must be extracted from
/// the superword result).
fn read_by_later_single(v: VarId, block: &BasicBlock, rest: &[ScheduledItem]) -> bool {
    for item in rest {
        let ScheduledItem::Single(id) = item else {
            continue;
        };
        let stmt = block.stmt(*id).expect("stmt in block");
        if stmt.uses().iter().any(|o| o.as_scalar() == Some(v)) {
            return true;
        }
        // A redefinition kills the lane before any further read.
        if matches!(stmt.dest(), Dest::Scalar(w) if *w == v) {
            return false;
        }
    }
    false
}

/// Whether two key sequences hold the same multiset.
fn same_multiset(a: &[OperandKey], b: &[OperandKey]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort();
    sb.sort();
    sa == sb
}

/// The permutation `perm` with `target[k] = src[perm[k]]`.
fn permutation_from(src: &[OperandKey], target: &[OperandKey]) -> Vec<usize> {
    let mut used = vec![false; src.len()];
    target
        .iter()
        .map(|t| {
            let j = src
                .iter()
                .enumerate()
                .position(|(j, s)| !used[j] && s == t)
                .expect("same multiset");
            used[j] = true;
            j
        })
        .collect()
}

/// Whether a write to `written` may overlap the data behind `key`.
fn key_overlaps(written: &Operand, key: &OperandKey) -> bool {
    match (written, key) {
        (Operand::Scalar(v), OperandKey::Scalar(w)) => v == w,
        (Operand::Array(r), OperandKey::Array(a, acc)) => {
            r.may_alias(&ArrayRef::new(*a, acc.clone()))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_core::{compile, SlpConfig, Strategy};

    fn compile_one(src: &str, strategy: Strategy) -> (CompiledKernel, MachineConfig) {
        compile_unrolled(src, strategy, 1)
    }

    /// `unroll = 1` keeps handwritten statement counts exact; tests that
    /// rely on unrolling pass the factor explicitly.
    fn compile_unrolled(
        src: &str,
        strategy: Strategy,
        unroll: usize,
    ) -> (CompiledKernel, MachineConfig) {
        let machine = MachineConfig::intel_dunnington();
        let p = slp_lang::compile(src).unwrap();
        let mut cfg = SlpConfig::for_machine(machine.clone(), strategy);
        cfg.unroll = unroll;
        let k = compile(&p, &cfg);
        (k, machine)
    }

    const CONTIG: &str = "kernel k {
        array A: f64[64]; array B: f64[64]; scalar s: f64;
        for i in 0..32 { A[i] = B[i] * s; }
    }";

    #[test]
    fn contiguous_kernel_uses_vector_loads() {
        let (k, m) = compile_unrolled(CONTIG, Strategy::Holistic, 2);
        let codes = lower_kernel(&k, &m, true);
        let code = &codes[0].1;
        assert!(code.vectorized);
        let aligned_loads = code
            .insts
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    VInst::Load {
                        class: AccessClass::Aligned,
                        ..
                    }
                )
            })
            .count();
        assert!(aligned_loads >= 1, "{:#?}", code.insts);
        // One splat for the uniform scalar s (exposed: never written) —
        // hoisted to the preheader since it is loop invariant.
        assert!(code.preheader.iter().any(|i| matches!(
            i,
            VInst::Splat {
                src: SplatSrc::Scalar {
                    from_memory: true,
                    ..
                },
                ..
            }
        )));
    }

    #[test]
    fn direct_reuse_emits_no_second_load() {
        // Two superword statements both read <B[2i], B[2i+1]>.
        let src = "kernel k {
            array A: f64[64]; array B: f64[64]; array C: f64[64];
            for i in 0..16 {
                A[2*i] = B[2*i] * 2.0;
                A[2*i+1] = B[2*i+1] * 2.0;
                C[2*i] = B[2*i] + 1.0;
                C[2*i+1] = B[2*i+1] + 1.0;
            }
        }";
        let (k, m) = compile_one(src, Strategy::Holistic);
        let codes = lower_kernel(&k, &m, true);
        let code = &codes[0].1;
        let loads = code
            .insts
            .iter()
            .filter(|i| matches!(i, VInst::Load { .. }))
            .count();
        assert_eq!(
            loads, 1,
            "B pack must be loaded exactly once: {:#?}",
            code.insts
        );
    }

    #[test]
    fn permuted_reuse_emits_permute_not_load() {
        let src = "kernel k {
            array A: f64[64]; array B: f64[64]; array C: f64[64];
            for i in 0..16 {
                A[2*i] = B[2*i] * 2.0;
                A[2*i+1] = B[2*i+1] * 2.0;
                C[2*i] = B[2*i+1] + 1.0;
                C[2*i+1] = B[2*i] + 1.0;
            }
        }";
        let (k, m) = compile_one(src, Strategy::Holistic);
        let codes = lower_kernel(&k, &m, true);
        let code = &codes[0].1;
        let loads = code
            .insts
            .iter()
            .filter(|i| matches!(i, VInst::Load { .. }))
            .count();
        let permutes = code
            .insts
            .iter()
            .filter(|i| matches!(i, VInst::Permute { .. }))
            .count();
        assert_eq!(loads, 1, "{:#?}", code.insts);
        assert_eq!(permutes, 1, "{:#?}", code.insts);
    }

    #[test]
    fn temp_dest_lanes_consumed_by_packs_are_free() {
        // t0/t1 are temps consumed only by the next superword: their
        // unpack must be all-Free.
        let src = "kernel k {
            array A: f64[64]; array B: f64[64];
            scalar t0, t1: f64;
            for i in 0..16 {
                t0 = B[2*i] * 2.0;
                t1 = B[2*i+1] * 2.0;
                A[2*i] = t0 + 1.0;
                A[2*i+1] = t1 + 1.0;
            }
        }";
        let (k, m) = compile_one(src, Strategy::Holistic);
        let codes = lower_kernel(&k, &m, false);
        let code = &codes[0].1;
        let unpack = code
            .insts
            .iter()
            .find_map(|i| match i {
                VInst::UnpackScalars { sinks, .. } => Some(sinks.clone()),
                _ => None,
            })
            .expect("scalar dest pack present");
        assert!(unpack.iter().all(|s| *s == LaneSink::Free), "{unpack:?}");
    }

    #[test]
    fn lanes_feeding_singles_cost_a_shuffle() {
        // t0 feeds a later single scalar statement: its lane is charged.
        let src = "kernel k {
            array A: f64[64]; array B: f64[64];
            scalar t0, t1, u: f64;
            for i in 0..16 {
                t0 = B[2*i] * 2.0;
                t1 = B[2*i+1] * 2.0;
                u = sqrt(t0);
                A[2*i] = u + 1.0;
                A[2*i+1] = t1 + 1.0;
            }
        }";
        let (k, m) = compile_one(src, Strategy::Holistic);
        let codes = lower_kernel(&k, &m, false);
        let code = &codes[0].1;
        let has_shuffle_sink = code.insts.iter().any(|i| match i {
            VInst::UnpackScalars { sinks, .. } => sinks.contains(&LaneSink::Shuffle),
            _ => false,
        });
        assert!(has_shuffle_sink, "{:#?}", code.insts);
    }

    #[test]
    fn exposed_dest_lanes_are_stored() {
        // Accumulators are upward-exposed: their lanes sink to memory.
        let src = "kernel k {
            array B: f64[64];
            scalar acc0, acc1: f64;
            for i in 0..16 {
                acc0 = acc0 + B[2*i];
                acc1 = acc1 + B[2*i+1];
            }
        }";
        let (k, m) = compile_one(src, Strategy::Holistic);
        let codes = lower_kernel(&k, &m, false);
        let code = &codes[0].1;
        let has_mem_sink = code.insts.iter().any(|i| match i {
            VInst::UnpackScalars { sinks, .. } => sinks.contains(&LaneSink::Memory),
            _ => false,
        });
        assert!(has_mem_sink, "{:#?}", code.insts);
    }

    #[test]
    fn cost_gate_reverts_unprofitable_blocks() {
        // Adjacent loads feeding exposed accumulators: the baseline
        // seeds the pair, but the exposed scalar pack's loads and
        // memory sinks outweigh the vector op saving, so the gate keeps
        // the scalar block. (The holistic strategy self-gates during
        // proposal arbitration, so the VM gate is exercised through the
        // baseline.)
        let src = "kernel k {
            array A: f64[256]; scalar a, b: f64;
            for i in 0..16 { a = a + A[8*i]; b = b + A[8*i+1]; }
        }";
        let (k, m) = compile_one(src, Strategy::Baseline);
        let codes = lower_kernel(&k, &m, true);
        let gated = &codes[0].1;
        assert!(!gated.vectorized, "{:#?}", gated.insts);
        assert!(gated
            .insts
            .iter()
            .all(|i| matches!(i, VInst::Scalar { .. })));
        // Without the gate the vector code stays.
        let ungated = lower_kernel(&k, &m, false);
        assert!(ungated[0].1.vectorized);
    }

    #[test]
    fn scalar_strategy_lowers_to_scalar_instructions() {
        let (k, m) = compile_unrolled(CONTIG, Strategy::Scalar, 2);
        let codes = lower_kernel(&k, &m, true);
        assert!(codes
            .iter()
            .all(|(_, c)| c.insts.iter().all(|i| matches!(i, VInst::Scalar { .. }))));
    }

    #[test]
    fn scalar_temps_cost_no_memory() {
        let src = "kernel k {
            array A: f64[64];
            scalar t, u: f64;
            for i in 0..16 { t = A[i]; u = t * 2.0; A[i] = u; }
        }";
        let (k, m) = compile_one(src, Strategy::Scalar);
        let codes = lower_kernel(&k, &m, true);
        let code = &codes[0].1;
        // Memory ops: one load (A[i]) and one store (A[i]); the scalar
        // traffic through t and u is free.
        assert_eq!(code.static_metrics.memory_ops, 2, "{:#?}", code.insts);
    }

    #[test]
    fn permutation_helper_is_correct() {
        let a = OperandKey::Scalar(VarId::new(0));
        let b = OperandKey::Scalar(VarId::new(1));
        let c = OperandKey::Scalar(VarId::new(2));
        let src = [a.clone(), b.clone(), c.clone()];
        let tgt = [c.clone(), a.clone(), b.clone()];
        assert_eq!(permutation_from(&src, &tgt), vec![2, 0, 1]);
        // Duplicate keys resolve consistently.
        let src2 = [a.clone(), a.clone(), b.clone()];
        let tgt2 = [b.clone(), a.clone(), a.clone()];
        assert_eq!(permutation_from(&src2, &tgt2), vec![2, 0, 1]);
    }
}
