//! Loop-invariant pack hoisting — part of the post-processing "other
//! low-level optimizations" of the paper's Figure 3.
//!
//! A superword materialization whose inputs cannot change across the
//! innermost loop's iterations — a broadcast of a never-written scalar, a
//! constant vector, or a load from a program-wide read-only array whose
//! subscripts do not use the innermost induction variable — is executed
//! once per loop *entry* instead of once per iteration. This is the LICM
//! every real backend performs on SLP output (the splat of `alpha` in an
//! axpy loop is the canonical case), and it applies identically to every
//! optimization scheme because code generation is shared.
//!
//! Hoisting only *partitions* the instruction sequence into a preheader
//! and a body; it never changes the instruction set, so static metrics of
//! `preheader + body` stay equal to the unhoisted block (the §4.3
//! estimator relies on this).

use std::collections::HashSet;

use slp_ir::{Dest, LoopHeader, Program, VarId};

use crate::code::{SplatSrc, VInst, VReg};
use crate::regalloc::uses_of;

/// Splits `insts` into `(preheader, body)`: the preheader holds the
/// hoistable materializations, in their original relative order.
///
/// `innermost` is the loop the block sits in (`None` means top-level code
/// — nothing to hoist out of).
pub fn hoist_invariant_packs(
    insts: Vec<VInst>,
    program: &Program,
    innermost: Option<&LoopHeader>,
) -> (Vec<VInst>, Vec<VInst>) {
    let Some(loop_header) = innermost else {
        return (Vec::new(), insts);
    };

    // Scalars written anywhere in the program cannot be assumed stable
    // across iterations (a sibling block inside the same loop might write
    // them); same for arrays.
    let mut written_scalars: HashSet<VarId> = HashSet::new();
    program.for_each_stmt(|s| {
        if let Dest::Scalar(v) = s.dest() {
            written_scalars.insert(*v);
        }
    });

    let invariant_inst = |inst: &VInst| -> bool {
        match inst {
            VInst::ConstVec { .. } => true,
            VInst::Splat { src, .. } => match src {
                SplatSrc::Const(_) => true,
                SplatSrc::Scalar { var, .. } => !written_scalars.contains(var),
            },
            VInst::Load { refs, .. } => refs.iter().all(|r| {
                program.array_is_read_only(r.array)
                    && r.access
                        .dims()
                        .iter()
                        .all(|e| e.coeff(loop_header.var) == 0)
            }),
            VInst::PackScalars { vars, .. } => vars.iter().all(|v| !written_scalars.contains(v)),
            _ => false,
        }
    };

    // A hoisted instruction's register must not be clobbered in the body.
    // Codegen emits SSA-style (each register defined once), so hoisting
    // the defining instruction is enough; but permuted-reuse rewrites may
    // read hoisted registers, which is fine.
    let mut preheader = Vec::new();
    let mut body = Vec::new();
    let mut hoisted_regs: HashSet<VReg> = HashSet::new();
    for inst in insts {
        let hoistable = invariant_inst(&inst)
            // Inputs produced in the body cannot be consumed earlier.
            && uses_of(&inst).iter().all(|r| hoisted_regs.contains(r));
        if hoistable {
            if let Some(d) = crate::regalloc::def_of(&inst) {
                hoisted_regs.insert(d);
            }
            preheader.push(inst);
        } else {
            body.push(inst);
        }
    }
    (preheader, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::AccessClass;
    use slp_ir::{AccessVector, AffineExpr, ArrayRef, Expr, ScalarType};

    fn setup() -> (Program, LoopHeader) {
        let mut p = Program::new("t");
        let _a = p.add_array("A", ScalarType::F64, vec![64], true); // read-only
        let b = p.add_array("B", ScalarType::F64, vec![64], true); // written below
        let s = p.add_scalar("alpha", ScalarType::F64); // never written
        let t = p.add_scalar("t", ScalarType::F64); // written below
        let i = p.add_loop_var("i");
        let j = p.add_loop_var("j");
        let _ = s;
        let stmt = p.make_stmt(
            ArrayRef::new(b, AccessVector::new(vec![AffineExpr::var(i)])).into(),
            Expr::Copy(1.0.into()),
        );
        let stmt2 = p.make_stmt(t.into(), Expr::Copy(2.0.into()));
        p.push_item(slp_ir::Item::Stmt(stmt));
        p.push_item(slp_ir::Item::Stmt(stmt2));
        let header = LoopHeader {
            var: i,
            lower: 0,
            upper: 8,
            step: 1,
        };
        let _ = j;
        (p, header)
    }

    fn splat_const(dst: u32) -> VInst {
        VInst::Splat {
            dst: VReg(dst),
            src: SplatSrc::Const(2.0),
            width: 2,
        }
    }

    #[test]
    fn const_and_parameter_splats_hoist() {
        let (p, h) = setup();
        let insts = vec![
            splat_const(0),
            VInst::Splat {
                dst: VReg(1),
                src: SplatSrc::Scalar {
                    var: VarId::new(0), // alpha: never written
                    from_memory: true,
                },
                width: 2,
            },
            VInst::Splat {
                dst: VReg(2),
                src: SplatSrc::Scalar {
                    var: VarId::new(1), // t: written in the program
                    from_memory: false,
                },
                width: 2,
            },
        ];
        let (pre, body) = hoist_invariant_packs(insts, &p, Some(&h));
        assert_eq!(pre.len(), 2);
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn invariant_loads_hoist_only_from_read_only_arrays() {
        let (p, h) = setup();
        let load = |array: u32, coeff: i64| VInst::Load {
            dst: VReg(0),
            refs: vec![ArrayRef::new(
                slp_ir::ArrayId::new(array),
                AccessVector::new(vec![
                    AffineExpr::var(slp_ir::LoopVarId::new(1)).scaled(coeff)
                ]),
            )],
            class: AccessClass::Aligned,
        };
        // A (read-only) indexed by the *outer* var j: hoists out of i.
        let (pre, body) = hoist_invariant_packs(vec![load(0, 2)], &p, Some(&h));
        assert_eq!((pre.len(), body.len()), (1, 0));
        // B is written in the program: stays.
        let (pre, body) = hoist_invariant_packs(vec![load(1, 2)], &p, Some(&h));
        assert_eq!((pre.len(), body.len()), (0, 1));
    }

    #[test]
    fn loads_using_the_innermost_var_stay() {
        let (p, h) = setup();
        let load = VInst::Load {
            dst: VReg(0),
            refs: vec![ArrayRef::new(
                slp_ir::ArrayId::new(0),
                AccessVector::new(vec![AffineExpr::var(h.var).scaled(2)]),
            )],
            class: AccessClass::Aligned,
        };
        let (pre, body) = hoist_invariant_packs(vec![load], &p, Some(&h));
        assert_eq!((pre.len(), body.len()), (0, 1));
    }

    #[test]
    fn top_level_blocks_hoist_nothing() {
        let (p, _) = setup();
        let (pre, body) = hoist_invariant_packs(vec![splat_const(0)], &p, None);
        assert!(pre.is_empty());
        assert_eq!(body.len(), 1);
    }
}
