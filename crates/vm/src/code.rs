//! The vector instruction set the code generator targets.
//!
//! Each instruction knows its own [`InstMetrics`]: cycle cost under a
//! [`CostParams`] table plus its contribution to the §7 counters (dynamic
//! instructions, memory operations, packing/unpacking operations, register
//! permutations).
//!
//! The accounting follows the paper's §7.1 setup: "we map the register
//! reshuffling/permutation operations to native shuffling instruction set
//! supported by the underlying architecture, rather than loading/storing
//! from/to physical memory". Concretely:
//!
//! * block-local scalar temporaries are register-resident — moving them
//!   between scalar and vector registers costs insert/extract *shuffles*
//!   (packing/unpacking operations), never memory traffic;
//! * *upward-exposed* scalars (parameters, accumulators) are
//!   memory-resident, so packing them costs real loads — unless the §5.1
//!   scalar layout placed the pack contiguously, in which case the whole
//!   pack moves with one vector memory operation;
//! * arrays are always memory: one vector operation for an aligned
//!   contiguous pack, an unaligned access for a contiguous misaligned
//!   pack, or a per-lane gather/scatter otherwise.

use std::fmt;

use slp_core::{op_cost_factor, CostParams};
use slp_ir::{ArrayRef, ExprShape, Statement, VarId};

/// A virtual vector register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReg(pub u32);

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// The memory-access class of an array pack movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessClass {
    /// One aligned vector memory operation.
    Aligned,
    /// One unaligned contiguous vector memory operation.
    Unaligned,
    /// Per-lane scalar memory operations plus register insert/extract.
    Gather,
}

/// How a scalar pack moves between its scalar homes and a vector register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarPackClass {
    /// All lanes are memory-resident and the §5.1 layout made them
    /// contiguous and aligned: one vector memory operation.
    VectorMem,
    /// Per lane: a register shuffle, plus a memory operation for
    /// memory-resident (upward-exposed) lanes.
    PerLane,
}

/// The write-back obligation of one destination lane of a superword
/// statement with scalar destinations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneSink {
    /// The lane is only consumed by later superwords through register
    /// reuse, or not at all: free.
    Free,
    /// The lane feeds a later scalar statement: one extract shuffle moves
    /// it to its scalar register.
    Shuffle,
    /// The lane is upward-exposed (memory-resident): extract plus a
    /// scalar store.
    Memory,
}

/// One vector-machine instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum VInst {
    /// A statement executed scalar. `mem_loads`/`mem_stores` count its
    /// real memory traffic (array accesses plus upward-exposed scalar
    /// accesses; register-resident temporaries are free).
    Scalar {
        /// The statement.
        stmt: Statement,
        /// Memory loads this statement performs.
        mem_loads: u32,
        /// Memory stores this statement performs.
        mem_stores: u32,
    },
    /// Load an array pack into `dst`.
    Load {
        /// Destination register.
        dst: VReg,
        /// Lane references.
        refs: Vec<ArrayRef>,
        /// Access classification (fixed at compile time).
        class: AccessClass,
    },
    /// Store `src` to an array pack.
    Store {
        /// Source register.
        src: VReg,
        /// Lane references.
        refs: Vec<ArrayRef>,
        /// Access classification.
        class: AccessClass,
    },
    /// Assemble a vector register from scalar variables.
    PackScalars {
        /// Destination register.
        dst: VReg,
        /// Lane variables.
        vars: Vec<VarId>,
        /// Per lane: whether the scalar is memory-resident (costs a load).
        lane_mem: Vec<bool>,
        /// Whole-pack classification.
        class: ScalarPackClass,
    },
    /// Distribute a superword's lanes to their scalar destinations.
    UnpackScalars {
        /// Source register.
        src: VReg,
        /// Lane variables.
        vars: Vec<VarId>,
        /// Per-lane write-back obligation.
        sinks: Vec<LaneSink>,
        /// Whole-pack classification (`VectorMem` when the §5.1 layout
        /// lets one vector store cover every memory-resident lane).
        class: ScalarPackClass,
    },
    /// Materialize a per-lane constant vector (constant pool load).
    ConstVec {
        /// Destination register.
        dst: VReg,
        /// Per-lane values.
        values: Vec<f64>,
    },
    /// Broadcast one value into every lane of `dst`.
    Splat {
        /// Destination register.
        dst: VReg,
        /// The value source.
        src: SplatSrc,
        /// Lane count.
        width: usize,
    },
    /// Rearrange lanes: `dst[k] = src[perm[k]]`.
    Permute {
        /// Destination register.
        dst: VReg,
        /// Source register.
        src: VReg,
        /// Lane permutation.
        perm: Vec<usize>,
    },
    /// A SIMD ALU operation over full registers.
    Op {
        /// Destination register.
        dst: VReg,
        /// Operator shape.
        shape: ExprShape,
        /// Source registers, in operand order.
        srcs: Vec<VReg>,
    },
    /// Spill a register to its stack slot (inserted by register
    /// allocation when pressure exceeds the file; cost/bookkeeping only —
    /// values keep flowing through the virtual register).
    Spill {
        /// The spilled register.
        src: VReg,
    },
    /// Reload a spilled register from its stack slot.
    Reload {
        /// The reloaded register.
        dst: VReg,
    },
    /// A load that is satisfied from the previous iteration's register on
    /// all but the first iteration (the opt-in cross-iteration reuse
    /// extension). Static metrics charge the steady-state register move;
    /// the interpreter charges the real load on the first iteration.
    CarriedLoad {
        /// Destination register.
        dst: VReg,
        /// Lane references (used on the first iteration).
        refs: Vec<ArrayRef>,
        /// Access classification of the first-iteration load.
        class: AccessClass,
        /// The register carrying the value from the previous iteration.
        carried_from: VReg,
    },
}

/// The value source of a [`VInst::Splat`].
#[derive(Debug, Clone, PartialEq)]
pub enum SplatSrc {
    /// An immediate constant.
    Const(f64),
    /// A scalar variable; `from_memory` marks upward-exposed scalars that
    /// must be loaded before broadcasting.
    Scalar {
        /// The broadcast variable.
        var: VarId,
        /// Whether a memory load precedes the broadcast.
        from_memory: bool,
    },
}

/// Per-instruction contribution to the evaluation counters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct InstMetrics {
    /// Estimated cycles.
    pub cycles: f64,
    /// Dynamic instructions (total, including packing).
    pub dynamic_instructions: u64,
    /// Memory operations.
    pub memory_ops: u64,
    /// Cycles spent in memory operations (used by the multicore
    /// contention model).
    pub memory_cycles: f64,
    /// Packing/unpacking operations (gather/scatter element moves,
    /// inserts, extracts, broadcasts, shuffles).
    pub packing_ops: u64,
    /// Register permutation instructions (subset of packing ops).
    pub permutes: u64,
    /// SIMD ALU operations.
    pub simd_ops: u64,
}

impl InstMetrics {
    /// Accumulates `other` into `self`.
    pub fn add(&mut self, other: &InstMetrics) {
        self.cycles += other.cycles;
        self.dynamic_instructions += other.dynamic_instructions;
        self.memory_ops += other.memory_ops;
        self.memory_cycles += other.memory_cycles;
        self.packing_ops += other.packing_ops;
        self.permutes += other.permutes;
        self.simd_ops += other.simd_ops;
    }

    /// Scales every counter by `n` occurrences.
    pub fn scaled(&self, n: f64) -> InstMetrics {
        InstMetrics {
            cycles: self.cycles * n,
            dynamic_instructions: (self.dynamic_instructions as f64 * n).round() as u64,
            memory_ops: (self.memory_ops as f64 * n).round() as u64,
            memory_cycles: self.memory_cycles * n,
            packing_ops: (self.packing_ops as f64 * n).round() as u64,
            permutes: (self.permutes as f64 * n).round() as u64,
            simd_ops: (self.simd_ops as f64 * n).round() as u64,
        }
    }

    /// Dynamic instructions excluding packing/unpacking — the Figure 17
    /// "dynamic instructions" series.
    pub fn dynamic_excluding_packing(&self) -> u64 {
        self.dynamic_instructions.saturating_sub(self.packing_ops)
    }
}

impl VInst {
    /// The metrics this instruction contributes per execution.
    pub fn metrics(&self, params: &CostParams) -> InstMetrics {
        match self {
            VInst::Scalar {
                stmt,
                mem_loads,
                mem_stores,
            } => {
                let (l, s) = (u64::from(*mem_loads), u64::from(*mem_stores));
                let mem_cycles = l as f64 * params.scalar_load + s as f64 * params.scalar_store;
                InstMetrics {
                    cycles: mem_cycles + op_cost_factor(stmt.expr().shape()) * params.scalar_op,
                    dynamic_instructions: l + s + 1,
                    memory_ops: l + s,
                    memory_cycles: mem_cycles,
                    ..InstMetrics::default()
                }
            }
            VInst::Load { refs, class, .. } => {
                array_access_metrics(refs.len(), *class, params, true)
            }
            VInst::Store { refs, class, .. } => {
                array_access_metrics(refs.len(), *class, params, false)
            }
            VInst::PackScalars {
                lane_mem, class, ..
            } => match class {
                ScalarPackClass::VectorMem => InstMetrics {
                    cycles: params.vector_load,
                    dynamic_instructions: 1,
                    memory_ops: 1,
                    memory_cycles: params.vector_load,
                    ..InstMetrics::default()
                },
                ScalarPackClass::PerLane => {
                    let w = lane_mem.len() as u64;
                    let mem = lane_mem.iter().filter(|&&m| m).count() as u64;
                    InstMetrics {
                        cycles: w as f64 * params.insert + mem as f64 * params.scalar_load,
                        dynamic_instructions: w + mem,
                        memory_ops: mem,
                        memory_cycles: mem as f64 * params.scalar_load,
                        packing_ops: w + mem,
                        ..InstMetrics::default()
                    }
                }
            },
            VInst::UnpackScalars { sinks, class, .. } => match class {
                ScalarPackClass::VectorMem => InstMetrics {
                    cycles: params.vector_store,
                    dynamic_instructions: 1,
                    memory_ops: 1,
                    memory_cycles: params.vector_store,
                    ..InstMetrics::default()
                },
                ScalarPackClass::PerLane => {
                    let mut m = InstMetrics::default();
                    for sink in sinks {
                        match sink {
                            LaneSink::Free => {}
                            LaneSink::Shuffle => {
                                m.cycles += params.extract;
                                m.dynamic_instructions += 1;
                                m.packing_ops += 1;
                            }
                            LaneSink::Memory => {
                                m.cycles += params.extract + params.scalar_store;
                                m.dynamic_instructions += 2;
                                m.memory_ops += 1;
                                m.memory_cycles += params.scalar_store;
                                m.packing_ops += 2;
                            }
                        }
                    }
                    m
                }
            },
            VInst::ConstVec { .. } => InstMetrics {
                // One constant-pool vector load.
                cycles: params.vector_load,
                dynamic_instructions: 1,
                memory_ops: 1,
                memory_cycles: params.vector_load,
                ..InstMetrics::default()
            },
            VInst::Splat { src, .. } => {
                let mem = matches!(
                    src,
                    SplatSrc::Scalar {
                        from_memory: true,
                        ..
                    }
                ) as u64;
                InstMetrics {
                    cycles: params.insert + mem as f64 * params.scalar_load,
                    dynamic_instructions: 1 + mem,
                    memory_ops: mem,
                    memory_cycles: mem as f64 * params.scalar_load,
                    packing_ops: 1 + mem,
                    ..InstMetrics::default()
                }
            }
            VInst::Permute { .. } => InstMetrics {
                cycles: params.permute,
                dynamic_instructions: 1,
                packing_ops: 1,
                permutes: 1,
                ..InstMetrics::default()
            },
            VInst::Op { shape, .. } => InstMetrics {
                cycles: op_cost_factor(*shape) * params.simd_op,
                dynamic_instructions: 1,
                simd_ops: 1,
                ..InstMetrics::default()
            },
            VInst::Spill { .. } => InstMetrics {
                cycles: params.vector_store,
                dynamic_instructions: 1,
                memory_ops: 1,
                memory_cycles: params.vector_store,
                ..InstMetrics::default()
            },
            VInst::Reload { .. } => InstMetrics {
                cycles: params.vector_load,
                dynamic_instructions: 1,
                memory_ops: 1,
                memory_cycles: params.vector_load,
                ..InstMetrics::default()
            },
            VInst::CarriedLoad { .. } => InstMetrics {
                // Steady state: one register move.
                cycles: params.reg_move,
                dynamic_instructions: 1,
                ..InstMetrics::default()
            },
        }
    }
}

impl fmt::Display for VInst {
    /// Assembly-style rendering, e.g. `vload.a x0, A[2*i0 .. +2]` or
    /// `shuf x3, x1, [1,0]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn refs_str(refs: &[ArrayRef]) -> String {
            match refs.first() {
                Some(first) => format!("{first} ..x{}", refs.len()),
                None => "<empty>".to_string(),
            }
        }
        fn class_suffix(class: &AccessClass) -> &'static str {
            match class {
                AccessClass::Aligned => "a",
                AccessClass::Unaligned => "u",
                AccessClass::Gather => "g",
            }
        }
        match self {
            VInst::Scalar { stmt, .. } => write!(f, "scalar  {stmt}"),
            VInst::Load { dst, refs, class } => {
                write!(f, "vload.{} {dst}, {}", class_suffix(class), refs_str(refs))
            }
            VInst::Store { src, refs, class } => {
                write!(
                    f,
                    "vstore.{} {}, {src}",
                    class_suffix(class),
                    refs_str(refs)
                )
            }
            VInst::PackScalars {
                dst, vars, class, ..
            } => {
                let names: Vec<String> = vars.iter().map(|v| v.to_string()).collect();
                let m = if *class == ScalarPackClass::VectorMem {
                    ".m"
                } else {
                    ""
                };
                write!(f, "pack{m}   {dst}, [{}]", names.join(","))
            }
            VInst::UnpackScalars {
                src, vars, class, ..
            } => {
                let names: Vec<String> = vars.iter().map(|v| v.to_string()).collect();
                let m = if *class == ScalarPackClass::VectorMem {
                    ".m"
                } else {
                    ""
                };
                write!(f, "unpack{m} [{}], {src}", names.join(","))
            }
            VInst::ConstVec { dst, values } => {
                let vs: Vec<String> = values.iter().map(|v| v.to_string()).collect();
                write!(f, "vconst  {dst}, [{}]", vs.join(","))
            }
            VInst::Splat { dst, src, width } => match src {
                SplatSrc::Const(c) => write!(f, "splat   {dst}, {c} x{width}"),
                SplatSrc::Scalar { var, from_memory } => {
                    let m = if *from_memory { ".m" } else { "" };
                    write!(f, "splat{m} {dst}, {var} x{width}")
                }
            },
            VInst::Permute { dst, src, perm } => {
                let ps: Vec<String> = perm.iter().map(|p| p.to_string()).collect();
                write!(f, "shuf    {dst}, {src}, [{}]", ps.join(","))
            }
            VInst::Op { dst, shape, srcs } => {
                let name = match shape {
                    ExprShape::Copy => "vmov",
                    ExprShape::Unary(op) => match op {
                        slp_ir::UnOp::Neg => "vneg",
                        slp_ir::UnOp::Abs => "vabs",
                        slp_ir::UnOp::Sqrt => "vsqrt",
                    },
                    ExprShape::Binary(op) => match op {
                        slp_ir::BinOp::Add => "vadd",
                        slp_ir::BinOp::Sub => "vsub",
                        slp_ir::BinOp::Mul => "vmul",
                        slp_ir::BinOp::Div => "vdiv",
                        slp_ir::BinOp::Min => "vmin",
                        slp_ir::BinOp::Max => "vmax",
                    },
                    ExprShape::MulAdd => "vfma",
                    // Compare-to-mask + blend, printed as one superword op.
                    ExprShape::Select(op) => match op {
                        slp_ir::CmpOp::Lt => "vsellt",
                        slp_ir::CmpOp::Le => "vselle",
                        slp_ir::CmpOp::Gt => "vselgt",
                        slp_ir::CmpOp::Ge => "vselge",
                        slp_ir::CmpOp::Eq => "vseleq",
                        slp_ir::CmpOp::Ne => "vselne",
                    },
                };
                let ss: Vec<String> = srcs.iter().map(|s| s.to_string()).collect();
                write!(f, "{name:<7} {dst}, {}", ss.join(", "))
            }
            VInst::Spill { src } => write!(f, "spill   [slot], {src}"),
            VInst::Reload { dst } => write!(f, "reload  {dst}, [slot]"),
            VInst::CarriedLoad {
                dst, carried_from, ..
            } => {
                write!(f, "carry   {dst}, {carried_from} (load on iter 0)")
            }
        }
    }
}

fn array_access_metrics(
    width: usize,
    class: AccessClass,
    params: &CostParams,
    is_load: bool,
) -> InstMetrics {
    let w = width as u64;
    match class {
        AccessClass::Aligned => {
            let cycles = if is_load {
                params.vector_load
            } else {
                params.vector_store
            };
            InstMetrics {
                cycles,
                dynamic_instructions: 1,
                memory_ops: 1,
                memory_cycles: cycles,
                ..InstMetrics::default()
            }
        }
        AccessClass::Unaligned => {
            let cycles = if is_load {
                params.unaligned_load
            } else {
                params.unaligned_store
            };
            InstMetrics {
                cycles,
                dynamic_instructions: 1,
                memory_ops: 1,
                memory_cycles: cycles,
                // An unaligned access is charged as one packing event:
                // the hardware splits and merges cache lines.
                packing_ops: 1,
                ..InstMetrics::default()
            }
        }
        AccessClass::Gather => InstMetrics {
            cycles: if is_load {
                w as f64 * (params.scalar_load + params.insert)
            } else {
                w as f64 * (params.extract + params.scalar_store)
            },
            dynamic_instructions: 2 * w,
            memory_ops: w,
            memory_cycles: w as f64
                * if is_load {
                    params.scalar_load
                } else {
                    params.scalar_store
                },
            packing_ops: 2 * w,
            ..InstMetrics::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_ir::{BinOp, Expr, Operand, StmtId};

    fn params() -> CostParams {
        CostParams::intel()
    }

    fn scalar_inst(mem_loads: u32, mem_stores: u32) -> VInst {
        VInst::Scalar {
            stmt: Statement::new(
                StmtId::new(0),
                VarId::new(0).into(),
                Expr::Binary(BinOp::Add, VarId::new(1).into(), Operand::Const(1.0)),
            ),
            mem_loads,
            mem_stores,
        }
    }

    #[test]
    fn scalar_statement_charges_only_real_memory() {
        // A temp-to-temp statement: just the ALU op.
        let free = scalar_inst(0, 0).metrics(&params());
        assert_eq!(free.dynamic_instructions, 1);
        assert_eq!(free.memory_ops, 0);
        // One array load and one array store.
        let heavy = scalar_inst(1, 1).metrics(&params());
        assert_eq!(heavy.dynamic_instructions, 3);
        assert_eq!(heavy.memory_ops, 2);
        assert!(heavy.cycles > free.cycles);
    }

    #[test]
    fn aligned_access_is_one_memory_op() {
        let m = array_access_metrics(4, AccessClass::Aligned, &params(), true);
        assert_eq!(m.dynamic_instructions, 1);
        assert_eq!(m.memory_ops, 1);
        assert_eq!(m.packing_ops, 0);
    }

    #[test]
    fn gather_scales_with_width() {
        let m2 = array_access_metrics(2, AccessClass::Gather, &params(), true);
        let m4 = array_access_metrics(4, AccessClass::Gather, &params(), true);
        assert_eq!(m2.packing_ops, 4);
        assert_eq!(m4.packing_ops, 8);
        assert!(m4.cycles > m2.cycles);
        let s4 = array_access_metrics(4, AccessClass::Gather, &params(), false);
        assert_eq!(s4.memory_ops, 4);
    }

    #[test]
    fn scalar_pack_costs_shuffles_and_exposed_loads() {
        let temps = VInst::PackScalars {
            dst: VReg(0),
            vars: vec![VarId::new(0), VarId::new(1)],
            lane_mem: vec![false, false],
            class: ScalarPackClass::PerLane,
        }
        .metrics(&params());
        assert_eq!(temps.memory_ops, 0);
        assert_eq!(temps.packing_ops, 2);
        let mixed = VInst::PackScalars {
            dst: VReg(0),
            vars: vec![VarId::new(0), VarId::new(1)],
            lane_mem: vec![false, true],
            class: ScalarPackClass::PerLane,
        }
        .metrics(&params());
        assert_eq!(mixed.memory_ops, 1);
        assert!(mixed.cycles > temps.cycles);
        // §5.1 layout success: one vector load regardless of width.
        let vectored = VInst::PackScalars {
            dst: VReg(0),
            vars: vec![VarId::new(0), VarId::new(1)],
            lane_mem: vec![true, true],
            class: ScalarPackClass::VectorMem,
        }
        .metrics(&params());
        assert_eq!(vectored.memory_ops, 1);
        assert_eq!(vectored.dynamic_instructions, 1);
        let per_lane_exposed = VInst::PackScalars {
            dst: VReg(0),
            vars: vec![VarId::new(0), VarId::new(1)],
            lane_mem: vec![true, true],
            class: ScalarPackClass::PerLane,
        }
        .metrics(&params());
        assert!(vectored.cycles < per_lane_exposed.cycles);
    }

    #[test]
    fn unpack_charges_per_sink() {
        let m = VInst::UnpackScalars {
            src: VReg(0),
            vars: vec![VarId::new(0), VarId::new(1), VarId::new(2)],
            sinks: vec![LaneSink::Free, LaneSink::Shuffle, LaneSink::Memory],
            class: ScalarPackClass::PerLane,
        }
        .metrics(&params());
        assert_eq!(m.dynamic_instructions, 3); // 0 + 1 + 2
        assert_eq!(m.memory_ops, 1);
        assert_eq!(m.packing_ops, 3);
    }

    #[test]
    fn permute_counts_once() {
        let m = VInst::Permute {
            dst: VReg(0),
            src: VReg(1),
            perm: vec![1, 0],
        }
        .metrics(&params());
        assert_eq!(m.permutes, 1);
        assert_eq!(m.packing_ops, 1);
        assert_eq!(m.dynamic_instructions, 1);
    }

    #[test]
    fn metrics_accumulate_and_scale() {
        let mut acc = InstMetrics::default();
        let m = array_access_metrics(2, AccessClass::Gather, &params(), true);
        acc.add(&m);
        acc.add(&m);
        assert_eq!(acc.packing_ops, 8);
        let scaled = m.scaled(3.0);
        assert_eq!(scaled.packing_ops, 12);
        assert_eq!(
            scaled.dynamic_excluding_packing(),
            scaled.dynamic_instructions - scaled.packing_ops
        );
    }

    #[test]
    fn splat_from_memory_costs_a_load() {
        let reg = VInst::Splat {
            dst: VReg(0),
            src: SplatSrc::Scalar {
                var: VarId::new(0),
                from_memory: false,
            },
            width: 2,
        }
        .metrics(&params());
        let mem = VInst::Splat {
            dst: VReg(0),
            src: SplatSrc::Scalar {
                var: VarId::new(0),
                from_memory: true,
            },
            width: 2,
        }
        .metrics(&params());
        assert_eq!(reg.memory_ops, 0);
        assert_eq!(mem.memory_ops, 1);
        assert!(mem.cycles > reg.cycles);
    }

    #[test]
    fn display_renders_assembly_style() {
        let splat = VInst::Splat {
            dst: VReg(1),
            src: SplatSrc::Scalar {
                var: VarId::new(0),
                from_memory: true,
            },
            width: 2,
        };
        assert_eq!(splat.to_string(), "splat.m x1, v0 x2");
        let op = VInst::Op {
            dst: VReg(2),
            shape: ExprShape::Binary(BinOp::Mul),
            srcs: vec![VReg(0), VReg(1)],
        };
        assert_eq!(op.to_string(), "vmul    x2, x0, x1");
        let perm = VInst::Permute {
            dst: VReg(3),
            src: VReg(2),
            perm: vec![1, 0],
        };
        assert_eq!(perm.to_string(), "shuf    x3, x2, [1,0]");
        let spill = VInst::Spill { src: VReg(4) };
        assert_eq!(spill.to_string(), "spill   [slot], x4");
    }

    #[test]
    fn div_vector_op_costs_more_than_add() {
        let add = VInst::Op {
            dst: VReg(0),
            shape: ExprShape::Binary(BinOp::Add),
            srcs: vec![],
        };
        let div = VInst::Op {
            dst: VReg(0),
            shape: ExprShape::Binary(BinOp::Div),
            srcs: vec![],
        };
        assert!(div.metrics(&params()).cycles > add.metrics(&params()).cycles);
    }
}
