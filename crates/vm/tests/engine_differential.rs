//! Old-vs-new engine differential: the bytecode engine must reproduce
//! the reference interpreter bit for bit on *every* observable — final
//! memory image (arrays and scalars), run statistics, vectorized-block
//! count and per-block cycle attribution — across the whole benchmark
//! suite, deterministic random-program sweeps, and property-generated
//! workloads.
//!
//! The reference interpreter stays in the tree as the oracle precisely
//! so this file can exist; a divergence here is always a bug in the
//! bytecode lowering, never in the program under test.

use proptest::prelude::*;
use slp_core::{compile, MachineConfig, SlpConfig, Strategy};
use slp_ir::Program;
use slp_suite::GeneratorConfig;
use slp_vm::{execute_gated, execute_gated_reference};

fn strategies() -> [Strategy; 4] {
    [
        Strategy::Scalar,
        Strategy::Native,
        Strategy::Baseline,
        Strategy::Holistic,
    ]
}

fn configs(machine: &MachineConfig) -> Vec<SlpConfig> {
    let mut out = Vec::new();
    for strategy in strategies() {
        out.push(SlpConfig::for_machine(machine.clone(), strategy));
    }
    // Layout and cross-iteration reuse exercise replication population
    // and carried loads, the two stateful corners of the engine.
    out.push(SlpConfig::for_machine(machine.clone(), Strategy::Holistic).with_layout());
    let mut reuse = SlpConfig::for_machine(machine.clone(), Strategy::Holistic);
    reuse.cross_iteration_reuse = true;
    out.push(reuse);
    out
}

/// Compiles `program` under `config` and fails the test unless both
/// engines produce identical outcomes (or the identical error).
fn assert_engines_agree(program: &Program, config: &SlpConfig, label: &str) {
    let kernel = compile(program, config);
    let machine = &config.machine;
    let fast = execute_gated(&kernel, machine, true);
    let slow = execute_gated_reference(&kernel, machine, true);
    match (fast, slow) {
        (Ok(fast), Ok(slow)) => {
            assert!(
                fast.state.bitwise_eq(&slow.state),
                "{label}: memory image diverged"
            );
            assert_eq!(fast.stats, slow.stats, "{label}: run statistics diverged");
            assert_eq!(
                fast.vectorized_blocks, slow.vectorized_blocks,
                "{label}: vectorized-block count diverged"
            );
            assert_eq!(
                fast.block_cycles, slow.block_cycles,
                "{label}: per-block cycles diverged"
            );
        }
        (Err(fast), Err(slow)) => {
            assert_eq!(fast, slow, "{label}: engines fail with different errors");
        }
        (fast, slow) => panic!(
            "{label}: one engine failed and the other did not \
             (bytecode: {fast:?}, reference: {slow:?})"
        ),
    }
}

#[test]
fn engines_agree_on_the_whole_suite() {
    for machine in [
        MachineConfig::intel_dunnington(),
        MachineConfig::amd_phenom_ii(),
    ] {
        for (spec, program) in slp_suite::all(1) {
            for config in configs(&machine) {
                let label = format!(
                    "{} / {} / {} (layout {})",
                    spec.name,
                    config.strategy.label(),
                    machine.name,
                    config.layout
                );
                assert_engines_agree(&program, &config, &label);
            }
        }
    }
}

#[test]
fn engines_agree_on_deterministic_random_sweeps() {
    let machine = MachineConfig::intel_dunnington();
    // Outer sweeps exercise preheader scheduling (invariant-pack
    // hoisting) and the layout replication gate; single loops exercise
    // the flat fast path.
    let shapes = [
        GeneratorConfig::default(),
        GeneratorConfig {
            outer_sweeps: 4,
            ..GeneratorConfig::default()
        },
        GeneratorConfig {
            body_stmts: 16,
            trip_count: 9,
            max_stride: 3,
            ..GeneratorConfig::default()
        },
    ];
    for (s, shape) in shapes.iter().enumerate() {
        for seed in 0..40u64 {
            let program = slp_suite::random_program(seed, shape);
            for config in configs(&machine) {
                let label = format!(
                    "shape {s} seed {seed} / {} (layout {})",
                    config.strategy.label(),
                    config.layout
                );
                assert_engines_agree(&program, &config, &label);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property-generated workloads: arbitrary generator knobs and
    /// seeds, all strategies, both machines. Trip counts and body sizes
    /// are kept moderate so the reference interpreter (the slow side of
    /// the comparison) stays fast enough for CI.
    #[test]
    fn engines_agree_on_property_generated_workloads(
        seed in 0u64..10_000,
        arrays in 2usize..5,
        scalars in 2usize..8,
        body_stmts in 4usize..14,
        trip_count in 4i64..24,
        max_stride in 1i64..4,
        outer_sweeps in 0i64..4,
        strategy_idx in 0usize..4,
        amd in any::<bool>(),
        layout in any::<bool>(),
    ) {
        let shape = GeneratorConfig {
            arrays,
            scalars,
            body_stmts,
            trip_count,
            max_stride,
            outer_sweeps,
        };
        let program = slp_suite::random_program(seed, &shape);
        let machine = if amd {
            MachineConfig::amd_phenom_ii()
        } else {
            MachineConfig::intel_dunnington()
        };
        let mut config = SlpConfig::for_machine(machine, strategies()[strategy_idx]);
        if layout {
            config = config.with_layout();
        }
        assert_engines_agree(&program, &config, "property workload");
    }
}
