//! The §4.3 static cost estimator in `slp-core` must mirror the code
//! generator's emission decisions: the pipeline uses the estimator to
//! arbitrate grouping proposals, and the VM re-derives the same costs as
//! its gate, so any drift between the two silently mis-arbitrates.
//!
//! For every suite kernel and a population of random programs, the
//! estimator's per-block cycles must equal the generated code's static
//! metrics whenever the block was actually vectorized (and the scalar
//! estimates must always agree).

use slp_core::{
    compile, estimate_scalar_cost, estimate_schedule_cost, CostContext, MachineConfig, SlpConfig,
    Strategy,
};
use slp_vm::lower_kernel;

fn check_kernel(program: &slp_ir::Program, machine: &MachineConfig) {
    let cfg = SlpConfig::for_machine(machine.clone(), Strategy::Holistic);
    let kernel = compile(program, &cfg);
    let exposed = kernel.program.upward_exposed_scalars();
    // Ungated code mirrors the schedules one to one.
    let codes = lower_kernel(&kernel, machine, false);
    for (info, (id, code)) in kernel.program.blocks().iter().zip(&codes) {
        assert_eq!(info.id, *id);
        let cx = CostContext {
            program: &kernel.program,
            loops: &info.loops,
            exposed: &exposed,
            cost: &machine.cost,
            vector_regs: machine.vector_regs,
            assume_layout: false,
        };
        let schedule = kernel.schedule_of(info.id).expect("scheduled block");
        let estimated = if schedule.is_vectorized() {
            estimate_schedule_cost(&info.block, schedule, &cx)
        } else {
            estimate_scalar_cost(&info.block, &cx)
        };
        // Hoisting partitions instructions between preheader and body
        // without changing the set, so the estimator matches their sum.
        let emitted = code.static_metrics.cycles + code.preheader_metrics.cycles;
        assert!(
            (estimated - emitted).abs() < 1e-6,
            "estimator drift on {} block {}: estimated {estimated}, emitted {emitted}\n{:#?}",
            program.name(),
            info.id,
            code.insts
        );
    }
}

#[test]
fn estimator_matches_codegen_on_the_suite() {
    let machine = MachineConfig::intel_dunnington();
    for (_, program) in slp_suite::all(1) {
        check_kernel(&program, &machine);
    }
}

#[test]
fn estimator_matches_codegen_on_random_programs() {
    let machine = MachineConfig::intel_dunnington();
    for seed in 0..60 {
        let program = slp_suite::random_program(seed, &slp_suite::GeneratorConfig::default());
        check_kernel(&program, &machine);
    }
}

#[test]
fn estimator_matches_codegen_on_amd_costs() {
    let machine = MachineConfig::amd_phenom_ii();
    for name in ["milc", "wrf", "gromacs", "ft"] {
        check_kernel(&slp_suite::kernel(name, 1), &machine);
    }
}
