//! Preheader execution semantics: hoisted invariant packs run once per
//! loop *entry* — re-entered inner loops re-run them, sibling iterations
//! do not.

use slp_core::{compile, MachineConfig, SlpConfig, Strategy};
use slp_vm::{execute, lower_kernel, VInst};

/// An inner loop with a hoistable splat, re-entered by an outer sweep.
const SRC: &str = "kernel ph {
    array A: f64[64];
    array B: f64[64];
    scalar alpha: f64;
    for t in 0..4 {
        for i in 0..16 {
            A[2*i] = B[2*i] + alpha * 2.0;
            A[2*i+1] = B[2*i+1] + alpha * 2.0;
        }
    }
}";

#[test]
fn hoisted_packs_amortize_over_inner_iterations() {
    let program = slp_lang::compile(SRC).expect("compiles");
    let machine = MachineConfig::intel_dunnington();
    let mut cfg = SlpConfig::for_machine(machine.clone(), Strategy::Holistic);
    cfg.unroll = 1;
    let kernel = compile(&program, &cfg);
    let codes = lower_kernel(&kernel, &machine, true);
    let (pre, body): (usize, usize) = codes
        .iter()
        .map(|(_, c)| (c.preheader.len(), c.insts.len()))
        .fold((0, 0), |(a, b), (c, d)| (a + c, b + d));
    assert!(pre >= 1, "the alpha splat (or its op chain) should hoist");
    assert!(body >= 1);

    // Count preheader executions through the metrics: preheader metrics
    // accrue 4 times (one per outer iteration), body metrics 64 times.
    let out = execute(&kernel, &machine).expect("runs");
    let code = &codes[0].1;
    let expected = code.preheader_metrics.cycles * 4.0
        + code.static_metrics.cycles * 64.0
        + machine.cost.loop_overhead * (64 + 4) as f64;
    assert!(
        (out.stats.metrics.cycles - expected).abs() < 1e-6,
        "cycles {} != expected {expected}",
        out.stats.metrics.cycles
    );
}

#[test]
fn preheaders_do_not_run_for_skipped_loops() {
    let src = "kernel skip {
        array A: f64[8];
        scalar alpha: f64;
        for t in 0..0 {
            for i in 0..4 {
                A[2*i] = alpha * 2.0;
                A[2*i+1] = alpha * 2.0;
            }
        }
    }";
    let program = slp_lang::compile(src).expect("compiles");
    let machine = MachineConfig::intel_dunnington();
    let mut cfg = SlpConfig::for_machine(machine.clone(), Strategy::Holistic);
    cfg.unroll = 1;
    let kernel = compile(&program, &cfg);
    let out = execute(&kernel, &machine).expect("runs");
    assert_eq!(out.stats.metrics.cycles, 0.0, "nothing should execute");
}

#[test]
fn emitted_code_is_deterministic() {
    // Two independent compilations produce byte-identical code — the
    // evaluation's reproducibility rests on this.
    let program = slp_lang::compile(SRC).expect("compiles");
    let machine = MachineConfig::intel_dunnington();
    let cfg = SlpConfig::for_machine(machine.clone(), Strategy::Holistic);
    let a = compile(&program, &cfg);
    let b = compile(&program, &cfg);
    assert_eq!(a.schedules, b.schedules);
    let ca = lower_kernel(&a, &machine, true);
    let cb = lower_kernel(&b, &machine, true);
    let flat = |codes: &[(slp_ir::BlockId, slp_vm::BlockCode)]| -> Vec<VInst> {
        codes
            .iter()
            .flat_map(|(_, c)| c.preheader.iter().chain(&c.insts).cloned())
            .collect()
    };
    assert_eq!(flat(&ca), flat(&cb));
}
