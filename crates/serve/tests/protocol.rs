//! Wire-protocol pinning: the v1 envelope, the legacy bare form, the
//! stable `S1xx` error codes, and the strategy strings the docs
//! promise.

use std::io::Cursor;
use std::sync::Arc;

use slp_driver::json::Json;
use slp_driver::{parse_strategy, CompileCache, ServeSummary};
use slp_serve::{serve_handler, Handler, ServeConfig};

const SRC: &str = "kernel k { array A: f64[16]; array B: f64[16]; \
                   for i in 0..16 { A[i] = A[i] + B[i]; } }";

/// Drives `lines` through a fresh default handler over the stdio
/// adapter and returns the parsed responses plus the summary.
fn run(lines: &str) -> (Vec<Json>, ServeSummary) {
    run_with(lines, ServeConfig::default())
}

fn run_with(lines: &str, config: ServeConfig) -> (Vec<Json>, ServeSummary) {
    let handler = Handler::new(Arc::new(CompileCache::in_memory(8)), config);
    let mut out = Vec::new();
    let summary = serve_handler(Cursor::new(lines), &mut out, &handler).expect("serve I/O");
    let responses = String::from_utf8(out)
        .expect("utf8 output")
        .lines()
        .map(|l| Json::parse(l).expect("response parses"))
        .collect();
    (responses, summary)
}

fn compile_v1(id: u64, tenant: &str, source: &str) -> String {
    Json::obj(vec![
        ("v", Json::num(1)),
        ("id", Json::num(id)),
        ("tenant", Json::str(tenant)),
        ("cmd", Json::str("compile")),
        ("name", Json::str("k")),
        ("source", Json::str(source)),
    ])
    .to_compact()
}

#[test]
fn v1_envelope_round_trips_with_id_echo() {
    let (responses, summary) = run(&format!(
        "{}\n{}\n",
        compile_v1(7, "team-a", SRC),
        compile_v1(8, "team-a", SRC)
    ));
    assert_eq!(responses.len(), 2);
    for (r, id) in responses.iter().zip([7, 8]) {
        assert_eq!(r.get("v").and_then(Json::u64), Some(1));
        assert_eq!(r.get("id").and_then(Json::u64), Some(id));
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
    }
    assert_eq!(
        responses[0].get("cache").and_then(Json::string),
        Some("compiled")
    );
    assert_eq!(
        responses[1].get("cache").and_then(Json::string),
        Some("memory")
    );
    assert_eq!(summary.compiled, 2);
    assert_eq!(summary.cache_hits, 1);
}

#[test]
fn v1_echoes_string_ids_verbatim() {
    let line = format!("{{\"v\":1,\"id\":\"req-xyz\",\"cmd\":\"compile\",\"source\":{SRC:?}}}");
    let (responses, _) = run(&line);
    assert_eq!(
        responses[0].get("id").and_then(Json::string),
        Some("req-xyz")
    );
}

/// The compat contract: a bare legacy request gets the historical
/// response shape — no `v`, no `id`, errors use `kind` — while a v1
/// request gets the envelope. One server, both shapes.
#[test]
fn legacy_requests_still_get_legacy_responses() {
    let legacy_ok = format!("{{\"cmd\":\"compile\",\"name\":\"k\",\"source\":{SRC:?}}}");
    let legacy_bad = "{\"cmd\":\"compile\",\"source\":\"kernel {\"}".to_string();
    let v1_bad = "{\"v\":1,\"id\":3,\"cmd\":\"compile\",\"source\":\"kernel {\"}".to_string();
    let (responses, _) = run(&format!("{legacy_ok}\n{legacy_bad}\n{v1_bad}\n"));

    // Legacy success: ok plus payload, no envelope keys.
    assert_eq!(responses[0].get("ok"), Some(&Json::Bool(true)));
    assert_eq!(responses[0].get("v"), None);
    assert_eq!(responses[0].get("id"), None);
    assert_eq!(
        responses[0].get("cache").and_then(Json::string),
        Some("compiled")
    );

    // Legacy failure: `kind`, not `code`.
    assert_eq!(responses[1].get("ok"), Some(&Json::Bool(false)));
    assert_eq!(
        responses[1].get("kind").and_then(Json::string),
        Some("parse")
    );
    assert_eq!(responses[1].get("code"), None);
    assert_eq!(responses[1].get("v"), None);

    // The same failure under v1: `code`, not `kind`, id echoed.
    assert_eq!(responses[2].get("ok"), Some(&Json::Bool(false)));
    assert_eq!(
        responses[2].get("code").and_then(Json::string),
        Some("S110")
    );
    assert_eq!(responses[2].get("kind"), None);
    assert_eq!(responses[2].get("id").and_then(Json::u64), Some(3));
}

#[test]
fn error_codes_are_stable() {
    let cases: Vec<(String, &str)> = vec![
        // Unknown command.
        ("{\"v\":1,\"cmd\":\"frobnicate\"}".into(), "S101"),
        // Unsupported version.
        ("{\"v\":2,\"cmd\":\"ping\"}".into(), "S102"),
        // Missing source.
        ("{\"v\":1,\"cmd\":\"compile\"}".into(), "S100"),
        // Unknown strategy string.
        (
            format!("{{\"v\":1,\"cmd\":\"compile\",\"source\":{SRC:?},\"strategy\":\"warp\"}}"),
            "S100",
        ),
        // Source does not parse.
        (
            "{\"v\":1,\"cmd\":\"compile\",\"source\":\"kernel {\"}".into(),
            "S110",
        ),
        // Parses but fails semantic validation (zero-extent array).
        (
            "{\"v\":1,\"cmd\":\"compile\",\"source\":\"kernel bad { array A: f64[0]; \
             for i in 0..4 { A[0] = A[0] + 1.0; } }\"}"
                .into(),
            "S111",
        ),
    ];
    let lines: String = cases.iter().map(|(l, _)| format!("{l}\n")).collect();
    let (responses, summary) = run(&lines);
    for ((line, code), response) in cases.iter().zip(&responses) {
        assert_eq!(
            response.get("ok"),
            Some(&Json::Bool(false)),
            "{line} should fail"
        );
        assert_eq!(
            response.get("code").and_then(Json::string),
            Some(*code),
            "wrong code for {line}"
        );
    }
    assert_eq!(summary.errors, cases.len() as u64);
}

/// Tentpole regression: a kernel the certificate pass proves
/// memory-unsafe is rejected with the stable `S114` code *before* any
/// compile work — the compiler never runs, so nothing is cached — and
/// the session keeps serving. Legacy clients see the same rejection as
/// `kind: "unsafe"`.
#[test]
fn proven_unsafe_kernels_are_rejected_before_compilation() {
    let oob = "kernel oob { array A: f64[8]; for i in 0..8 { A[i+1] = 2.0; } }";
    let legacy = format!("{{\"cmd\":\"compile\",\"name\":\"oob\",\"source\":{oob:?}}}");
    let lines = format!(
        "{}\n{legacy}\n{}\n",
        compile_v1(1, "", oob),
        compile_v1(2, "", SRC)
    );
    let (responses, summary) = run(&lines);

    // v1: typed S114 rejection naming the faulting access.
    assert_eq!(responses[0].get("ok"), Some(&Json::Bool(false)));
    assert_eq!(
        responses[0].get("code").and_then(Json::string),
        Some("S114")
    );
    assert!(
        responses[0]
            .get("error")
            .and_then(Json::string)
            .is_some_and(|e| e.contains("proven memory-unsafe")),
        "{}",
        responses[0].to_compact()
    );

    // Legacy: same gate, historical shape.
    assert_eq!(responses[1].get("ok"), Some(&Json::Bool(false)));
    assert_eq!(
        responses[1].get("kind").and_then(Json::string),
        Some("unsafe")
    );

    // The session keeps serving, and the safe compile still works.
    assert_eq!(responses[2].get("ok"), Some(&Json::Bool(true)));
    assert_eq!(summary.rejected_unsafe, 2);
    assert_eq!(summary.errors, 2);
    // The unsafe kernel never reached the compiler: one compile total.
    assert_eq!(summary.compiled, 1);
}

#[test]
fn unparseable_lines_answer_in_the_legacy_shape() {
    // Garbage cannot name a protocol version, so even v1 clients must
    // accept the legacy shape here; the presence of `code` (and absence
    // of `kind`) is how the shapes stay distinguishable — except for
    // this one case, which both generations report identically.
    let (responses, _) = run("{this is not json\n");
    assert_eq!(responses[0].get("ok"), Some(&Json::Bool(false)));
    assert_eq!(
        responses[0].get("kind").and_then(Json::string),
        Some("request")
    );
    assert_eq!(responses[0].get("v"), None);
}

/// Satellite regression: a request line past the configured byte cap
/// is answered with the stable `S103` error — in the legacy shape,
/// since an unread line cannot name a protocol version — and the
/// session keeps serving the lines after it.
#[test]
fn oversized_lines_answer_s103_and_the_session_survives() {
    let config = ServeConfig {
        max_line_bytes: 256,
        ..ServeConfig::default()
    };
    // An otherwise-valid compile whose source alone blows the cap.
    let huge = compile_v1(
        1,
        "",
        &format!("kernel k {{ {} }}", "array A: f64[16]; ".repeat(100)),
    );
    assert!(huge.len() > 256);
    let lines = format!("{huge}\n{}\n", compile_v1(2, "", SRC));
    let (responses, summary) = run_with(&lines, config);
    assert_eq!(responses.len(), 2);

    // The oversized line: a typed rejection, legacy-shaped.
    assert_eq!(responses[0].get("ok"), Some(&Json::Bool(false)));
    assert_eq!(
        responses[0].get("kind").and_then(Json::string),
        Some("request")
    );
    assert!(
        responses[0]
            .get("error")
            .and_then(Json::string)
            .is_some_and(|e| e.contains("256-byte cap")),
        "{}",
        responses[0].to_compact()
    );

    // The line after it is served normally.
    assert_eq!(responses[1].get("ok"), Some(&Json::Bool(true)));
    assert_eq!(responses[1].get("id").and_then(Json::u64), Some(2));
    assert_eq!(summary.requests, 2);
    assert_eq!(summary.errors, 1);
}

/// The cap is byte-exact (a line at the cap passes) and `0` disables
/// it entirely.
#[test]
fn line_cap_boundary_and_opt_out() {
    let at_cap = compile_v1(1, "", SRC);
    let (responses, _) = run_with(
        &format!("{at_cap}\n"),
        ServeConfig {
            max_line_bytes: at_cap.len(),
            ..ServeConfig::default()
        },
    );
    assert_eq!(
        responses[0].get("ok"),
        Some(&Json::Bool(true)),
        "a line exactly at the cap must pass: {}",
        responses[0].to_compact()
    );

    // Cap disabled: a multi-megabyte line (a valid kernel padded with
    // whitespace) is read in full and compiles.
    let huge = compile_v1(2, "", &format!("{}{}", " ".repeat(1 << 21), SRC));
    let (responses, _) = run_with(
        &format!("{huge}\n"),
        ServeConfig {
            max_line_bytes: 0,
            ..ServeConfig::default()
        },
    );
    assert_eq!(
        responses[0].get("ok"),
        Some(&Json::Bool(true)),
        "{}",
        responses[0].to_compact()
    );
}

/// Satellite regression: the usage docs list exactly the strategy
/// strings the parser accepts — including `optimal` and the
/// `auto-adjacent` alias — and every documented string compiles.
#[test]
fn documented_strategy_strings_round_trip() {
    let documented = [
        "scalar",
        "native",
        "auto-adjacent",
        "slp",
        "global",
        "optimal",
    ];
    for name in documented {
        // The parser accepts every documented string...
        let strategy = parse_strategy(name)
            .unwrap_or_else(|| panic!("documented strategy {name:?} must parse"));
        // ...the canonical rendering parses back to the same strategy...
        assert_eq!(
            parse_strategy(strategy.cli_name()),
            Some(strategy),
            "cli_name of {name:?} must round-trip"
        );
        // ...and a wire request naming it compiles.
        let line =
            format!("{{\"v\":1,\"cmd\":\"compile\",\"source\":{SRC:?},\"strategy\":{name:?}}}");
        let (responses, _) = run(&line);
        assert_eq!(
            responses[0].get("ok"),
            Some(&Json::Bool(true)),
            "documented strategy {name:?} must compile: {}",
            responses[0].to_compact()
        );
    }
    // The alias is an alias, not a distinct strategy: both names land on
    // the same pipeline and so the same cache key.
    assert_eq!(parse_strategy("auto-adjacent"), parse_strategy("native"));
}

#[test]
fn ping_stats_and_shutdown_verbs() {
    let lines = format!(
        "{}\n{}\n{}\n{}\n{}\n",
        "{\"v\":1,\"id\":1,\"cmd\":\"ping\"}",
        compile_v1(2, "", SRC),
        "{\"v\":1,\"id\":3,\"cmd\":\"stats\"}",
        "{\"cmd\":\"stats\"}",
        "{\"v\":1,\"id\":4,\"cmd\":\"shutdown\"}",
    );
    let (responses, summary) = run(&lines);
    assert_eq!(responses.len(), 5);
    assert_eq!(responses[0].get("pong"), Some(&Json::Bool(true)));

    // v1 stats: serve counters, cache counters, gauges.
    let stats = &responses[2];
    assert_eq!(stats.get("id").and_then(Json::u64), Some(3));
    let serve = stats.get("serve").expect("v1 stats carry serve counters");
    assert_eq!(serve.get("compiled").and_then(Json::u64), Some(1));
    assert!(stats.get("cache").is_some());
    assert_eq!(stats.get("draining"), Some(&Json::Bool(false)));

    // Legacy stats: the historical flat shape.
    let legacy = &responses[3];
    assert!(legacy.get("cache").is_some());
    assert_eq!(legacy.get("compiled").and_then(Json::u64), Some(1));
    assert_eq!(legacy.get("serve"), None);

    // Shutdown acknowledges in-envelope and ends the loop.
    assert_eq!(responses[4].get("shutdown"), Some(&Json::Bool(true)));
    assert_eq!(responses[4].get("id").and_then(Json::u64), Some(4));
    assert_eq!(summary.requests, 5);
}

#[test]
fn shutdown_stops_the_loop_before_later_lines() {
    let (responses, summary) = run("{\"cmd\":\"shutdown\"}\n{\"cmd\":\"stats\"}\n");
    assert_eq!(responses.len(), 1);
    assert_eq!(responses[0].get("shutdown"), Some(&Json::Bool(true)));
    assert_eq!(summary.requests, 1);
}

#[test]
fn coalesced_marker_never_appears_uncontended() {
    // Single-threaded traffic can never coalesce; the cache field must
    // be one of the tier names.
    let (responses, summary) = run(&format!(
        "{}\n{}\n",
        compile_v1(1, "", SRC),
        compile_v1(2, "", SRC)
    ));
    for r in &responses {
        let cache = r.get("cache").and_then(Json::string).expect("cache field");
        assert!(["compiled", "memory", "disk"].contains(&cache), "{cache}");
    }
    assert_eq!(summary.coalesced, 0);
}
