//! Concurrency invariants of the serve core: coalescing compiles once,
//! quota rejections poison nothing, drain finishes in-flight work, and
//! the counters are exact under multi-threaded load.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use slp_driver::json::Json;
use slp_driver::CompileCache;
use slp_serve::{Handler, QuotaConfig, ServeConfig};

const SRC: &str = "kernel k { array A: f64[16]; array B: f64[16]; \
                   for i in 0..16 { A[i] = A[i] + B[i]; } }";

fn unique_src(tag: u64) -> String {
    format!(
        "kernel u{tag} {{ array A: f64[16]; \
         for i in 0..16 {{ A[i] = A[i] + {}.0; }} }}",
        tag % 100
    )
}

fn compile_line(id: u64, tenant: &str, source: &str) -> String {
    Json::obj(vec![
        ("v", Json::num(1)),
        ("id", Json::num(id)),
        ("tenant", Json::str(tenant)),
        ("cmd", Json::str("compile")),
        ("source", Json::str(source)),
    ])
    .to_compact()
}

fn handler(config: ServeConfig) -> Handler {
    Handler::new(Arc::new(CompileCache::in_memory(256)), config)
}

/// N concurrent identical requests compile exactly once: one leader
/// stores, everyone else coalesces onto it (or hits the cache if it
/// arrives after the leader finished).
#[test]
fn coalesced_fingerprints_compile_once() {
    const N: u64 = 8;
    // The hold keeps the leader's slot occupied long enough that the
    // siblings reliably arrive while it is in flight.
    let handler = handler(ServeConfig {
        compile_hold_ms: 100,
        ..ServeConfig::default()
    });
    thread::scope(|scope| {
        for id in 0..N {
            let handler = &handler;
            scope.spawn(move || {
                let response = handler.handle_line(&compile_line(id, "", SRC));
                assert_eq!(response.json.get("ok"), Some(&Json::Bool(true)));
            });
        }
    });
    let summary = handler.summary();
    let stats = handler.cache().stats();
    assert_eq!(stats.stores, 1, "exactly one compile may store");
    assert_eq!(summary.compiled, N);
    assert_eq!(
        summary.coalesced + summary.cache_hits,
        N - 1,
        "everyone but the leader reuses its work: {summary:?}"
    );
    assert!(
        summary.coalesced >= 1,
        "the hold guarantees real coalescing"
    );
    assert_eq!(summary.errors, 0);
}

/// With dedup disabled the same burst races into N separate compiles —
/// the cache deduplicates *storage* but every request pays the compile.
#[test]
fn dedup_off_compiles_redundantly() {
    const N: u64 = 4;
    let handler = handler(ServeConfig {
        dedup: false,
        compile_hold_ms: 0,
        ..ServeConfig::default()
    });
    thread::scope(|scope| {
        for id in 0..N {
            let handler = &handler;
            scope.spawn(move || handler.handle_line(&compile_line(id, "", SRC)));
        }
    });
    let summary = handler.summary();
    assert_eq!(summary.coalesced, 0);
    assert_eq!(summary.compiled, N);
}

/// Quota exhaustion rejects with `S121` and touches nothing shared:
/// the rejected source is not cached, not compiled, and compiles fine
/// for a tenant with budget.
#[test]
fn quota_exhaustion_is_typed_and_poisons_nothing() {
    let handler = handler(ServeConfig {
        quota_overrides: vec![(
            "metered".to_string(),
            QuotaConfig {
                capacity: 2.0,
                refill_per_sec: 0.0,
            },
        )],
        ..ServeConfig::default()
    });

    // Two distinct sources fit the budget...
    for tag in 0..2 {
        let r = handler.handle_line(&compile_line(tag, "metered", &unique_src(tag)));
        assert_eq!(r.json.get("ok"), Some(&Json::Bool(true)), "within quota");
    }
    // ...the third is rejected with the stable code...
    let rejected_src = unique_src(99);
    let r = handler.handle_line(&compile_line(2, "metered", &rejected_src));
    assert_eq!(r.json.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(r.json.get("code").and_then(Json::string), Some("S121"));

    let stats = handler.cache().stats();
    assert_eq!(stats.stores, 2, "the rejected request must not store");

    // ...and the rejected source is untainted: an unmetered tenant
    // compiles it from scratch.
    let r = handler.handle_line(&compile_line(3, "other", &rejected_src));
    assert_eq!(r.json.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(
        r.json.get("cache").and_then(Json::string),
        Some("compiled"),
        "a rejection must not have primed the cache"
    );

    let summary = handler.summary();
    assert_eq!(summary.rejected_quota, 1);
    assert_eq!(summary.compiled, 3);
    // Anonymous-tenant traffic is not metered by an override.
    let r = handler.handle_line(&compile_line(4, "", &unique_src(7)));
    assert_eq!(r.json.get("ok"), Some(&Json::Bool(true)));
}

/// The token bucket refills over wall time.
#[test]
fn quota_refills_over_time() {
    let handler = handler(ServeConfig {
        quota: Some(QuotaConfig {
            capacity: 1.0,
            refill_per_sec: 50.0,
        }),
        ..ServeConfig::default()
    });
    let r = handler.handle_line(&compile_line(0, "t", SRC));
    assert_eq!(r.json.get("ok"), Some(&Json::Bool(true)));
    let r = handler.handle_line(&compile_line(1, "t", SRC));
    assert_eq!(r.json.get("code").and_then(Json::string), Some("S121"));
    // 50 tokens/s: one full token well within 100 ms.
    thread::sleep(Duration::from_millis(100));
    let r = handler.handle_line(&compile_line(2, "t", SRC));
    assert_eq!(r.json.get("ok"), Some(&Json::Bool(true)), "bucket refilled");
}

/// Past the admission cap requests are rejected with `S120` instead of
/// queueing.
#[test]
fn admission_cap_rejects_overload() {
    let handler = Arc::new(Handler::new(
        Arc::new(CompileCache::in_memory(64)),
        ServeConfig {
            max_in_flight: 1,
            compile_hold_ms: 200,
            ..ServeConfig::default()
        },
    ));
    let leader = {
        let handler = Arc::clone(&handler);
        thread::spawn(move || handler.handle_line(&compile_line(0, "", SRC)))
    };
    // Let the leader through the gate, then overflow it with a
    // *different* source (the same one would coalesce, not reject).
    while handler.active() == 0 {
        thread::sleep(Duration::from_millis(1));
    }
    let r = handler.handle_line(&compile_line(1, "", &unique_src(1)));
    assert_eq!(r.json.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(r.json.get("code").and_then(Json::string), Some("S120"));
    let leader_response = leader.join().expect("leader thread");
    assert_eq!(leader_response.json.get("ok"), Some(&Json::Bool(true)));
    let summary = handler.summary();
    assert_eq!(summary.rejected_overload, 1);
    assert_eq!(summary.accepted, 1);
    assert_eq!(summary.compiled, 1);
}

/// Drain: in-flight compiles complete and are answered; new ones are
/// rejected with `S122`.
#[test]
fn graceful_drain_completes_in_flight_compiles() {
    let handler = Arc::new(Handler::new(
        Arc::new(CompileCache::in_memory(64)),
        ServeConfig {
            compile_hold_ms: 150,
            ..ServeConfig::default()
        },
    ));
    let inflight = {
        let handler = Arc::clone(&handler);
        thread::spawn(move || handler.handle_line(&compile_line(0, "", SRC)))
    };
    while handler.active() == 0 {
        thread::sleep(Duration::from_millis(1));
    }
    handler.begin_drain();
    // New work is refused...
    let r = handler.handle_line(&compile_line(1, "", &unique_src(2)));
    assert_eq!(r.json.get("code").and_then(Json::string), Some("S122"));
    // ...but the admitted compile runs to a successful answer.
    let response = inflight.join().expect("in-flight thread");
    assert_eq!(response.json.get("ok"), Some(&Json::Bool(true)));
    let summary = handler.summary();
    assert_eq!(summary.compiled, 1);
    assert_eq!(summary.errors, 1, "only the drained request errored");
}

/// The counters add up exactly under contended mixed load:
/// every accepted compile is a store, a cache hit or a coalesce.
#[test]
fn counters_are_exact_under_concurrent_load() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 25;
    let handler = handler(ServeConfig::default());
    thread::scope(|scope| {
        for t in 0..THREADS {
            let handler = &handler;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    let line = match i % 5 {
                        // Shared sources: hits/coalesces after first use.
                        0..=2 => compile_line(t * PER_THREAD + i, "", SRC),
                        // Unique source per (thread, i): always compiles.
                        3 => compile_line(t * PER_THREAD + i, "", &unique_src(t * PER_THREAD + i)),
                        // Malformed.
                        _ => "{\"v\":1,\"cmd\":\"compile\"}".to_string(),
                    };
                    handler.handle_line(&line);
                }
            });
        }
    });
    let summary = handler.summary();
    let stats = handler.cache().stats();
    let total = THREADS * PER_THREAD;
    let malformed = THREADS * PER_THREAD.div_ceil(5);
    assert_eq!(summary.requests, total);
    assert_eq!(summary.errors, malformed);
    assert_eq!(summary.accepted, total - malformed);
    assert_eq!(summary.compiled, summary.accepted);
    assert_eq!(
        summary.compiled,
        stats.stores + summary.cache_hits + summary.coalesced,
        "every compile is exactly one of stored/hit/coalesced: {summary:?} {stats:?}"
    );
    assert_eq!(summary.rejected_overload, 0);
    assert_eq!(summary.rejected_quota, 0);
    assert_eq!(handler.active(), 0, "the admission gauge returns to zero");
}

/// Panic isolation: a compile that panics — injected here *while
/// holding the in-flight table lock*, poisoning it — degrades to an
/// `S112` answer for the leader AND for every coalesced follower
/// (nobody hangs on the slot), and the handler keeps answering
/// afterwards even though one of its mutexes was poisoned.
#[test]
fn injected_panic_degrades_to_s112_and_the_server_keeps_answering() {
    const FOLLOWERS: u64 = 3;
    let handler = Arc::new(Handler::new(
        Arc::new(CompileCache::in_memory(64)),
        ServeConfig {
            compile_hold_ms: 100,
            panic_on_name: Some("boom".to_string()),
            ..ServeConfig::default()
        },
    ));
    let boom_line = |id: u64| {
        Json::obj(vec![
            ("v", Json::num(1)),
            ("id", Json::num(id)),
            ("cmd", Json::str("compile")),
            ("name", Json::str("boom")),
            ("source", Json::str(SRC)),
        ])
        .to_compact()
    };

    // A leader plus followers racing onto the same fingerprint. Every
    // one must get a typed S112 answer — whether it led (its own panic,
    // caught by the guarded entry point), coalesced onto the doomed
    // slot (the publish guard's answer), or retried as a fresh leader.
    let mut clients = Vec::new();
    for id in 0..=FOLLOWERS {
        let handler = Arc::clone(&handler);
        clients.push(thread::spawn(move || {
            handler.handle_line_guarded(&boom_line(id))
        }));
        // Stagger so followers arrive while the leader holds the slot.
        thread::sleep(Duration::from_millis(10));
    }
    for client in clients {
        let response = client.join().expect("client thread must not die").json;
        assert_eq!(response.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            response.get("code").and_then(Json::string),
            Some("S112"),
            "{}",
            response.to_compact()
        );
    }

    // The in-flight table is empty again (the guard retired the slot)...
    assert_eq!(handler.active(), 0);
    // ...and the handler still serves everything, through the poisoned
    // lock: a fresh compile, a quota-metered path, stats and metrics.
    let r = handler.handle_line_guarded(&compile_line(90, "tenant", &unique_src(5)));
    assert_eq!(
        r.json.get("ok"),
        Some(&Json::Bool(true)),
        "a panicked request must not wedge later compiles: {}",
        r.json.to_compact()
    );
    let r = handler.handle_line_guarded("{\"v\":1,\"id\":91,\"cmd\":\"stats\"}");
    assert_eq!(r.json.get("ok"), Some(&Json::Bool(true)));
    assert!(handler.metrics_text().contains("slp_serve_requests_total"));
    let summary = handler.summary();
    assert!(
        summary.errors > FOLLOWERS,
        "every doomed request counted as an error: {summary:?}"
    );
}

/// The metrics exposition reflects the same counters.
#[test]
fn metrics_text_matches_summary() {
    let handler = handler(ServeConfig::default());
    handler.handle_line(&compile_line(0, "", SRC));
    handler.handle_line(&compile_line(1, "", SRC));
    handler.handle_line("garbage");
    let text = handler.metrics_text();
    assert!(text.contains("slp_serve_requests_total 3\n"), "{text}");
    assert!(text.contains("slp_serve_compiled_total 2\n"), "{text}");
    assert!(text.contains("slp_serve_cache_hits_total 1\n"), "{text}");
    assert!(text.contains("slp_serve_errors_total 1\n"), "{text}");
    assert!(text.contains("slp_serve_active 0\n"), "{text}");
    // Exactly one compile ran: its phase telemetry is exported.
    assert!(
        text.contains("slp_phase_nanos_total{phase="),
        "phase telemetry missing:\n{text}"
    );
}
