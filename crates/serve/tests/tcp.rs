//! TCP adapter integration: real sockets against a real server —
//! envelope round-trips, coalescing and quota rejection over the wire,
//! the metrics endpoint, graceful drain, and a deterministic loadgen
//! run with zero protocol errors.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use slp_driver::json::Json;
use slp_driver::CompileCache;
use slp_serve::loadgen::{self, LoadConfig, LoadMix};
use slp_serve::{serve_tcp, Handler, QuotaConfig, ServeConfig, TcpOptions, TcpServer};

const SRC: &str = "kernel k { array A: f64[16]; array B: f64[16]; \
                   for i in 0..16 { A[i] = A[i] + B[i]; } }";

fn start(config: ServeConfig) -> TcpServer {
    let handler = Handler::new(Arc::new(CompileCache::in_memory(256)), config);
    serve_tcp("127.0.0.1:0", Arc::new(handler), TcpOptions::default()).expect("bind loopback")
}

fn compile_line(id: u64, tenant: &str, source: &str) -> String {
    Json::obj(vec![
        ("v", Json::num(1)),
        ("id", Json::num(id)),
        ("tenant", Json::str(tenant)),
        ("cmd", Json::str("compile")),
        ("source", Json::str(source)),
    ])
    .to_compact()
}

/// Sends one line, reads one line.
fn round_trip(stream: &TcpStream, reader: &mut impl BufRead, line: &str) -> Json {
    writeln!(&mut { stream }, "{line}").expect("write request");
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    Json::parse(response.trim_end()).expect("response parses")
}

fn connect(server: &TcpServer) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let reader = BufReader::new(stream.try_clone().expect("clone stream"));
    (stream, reader)
}

#[test]
fn v1_and_legacy_round_trip_over_tcp() {
    let server = start(ServeConfig::default());
    let (stream, mut reader) = connect(&server);

    let r = round_trip(&stream, &mut reader, &compile_line(11, "team", SRC));
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(r.get("id").and_then(Json::u64), Some(11));
    assert_eq!(r.get("cache").and_then(Json::string), Some("compiled"));

    // A legacy bare request over the same connection.
    let legacy = format!("{{\"cmd\":\"compile\",\"source\":{SRC:?}}}");
    let r = round_trip(&stream, &mut reader, &legacy);
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(r.get("v"), None);
    assert_eq!(r.get("cache").and_then(Json::string), Some("memory"));

    drop((stream, reader));
    let summary = server.shutdown();
    assert_eq!(summary.compiled, 2);
    assert_eq!(summary.cache_hits, 1);
}

/// Acceptance pin: concurrent identical requests over distinct TCP
/// connections coalesce onto one compile.
#[test]
fn coalescing_over_tcp_compiles_once() {
    const CONNS: usize = 4;
    let server = start(ServeConfig {
        compile_hold_ms: 100,
        ..ServeConfig::default()
    });
    let addr = server.local_addr();
    let mut clients = Vec::new();
    for id in 0..CONNS as u64 {
        clients.push(thread::spawn(move || {
            let stream = TcpStream::connect(addr).expect("connect");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            round_trip(&stream, &mut reader, &compile_line(id, "", SRC))
        }));
    }
    let responses: Vec<Json> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();
    for r in &responses {
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{}", r.to_compact());
    }
    let summary = server.shutdown();
    assert_eq!(summary.compiled, CONNS as u64);
    assert_eq!(
        summary.coalesced + summary.cache_hits,
        CONNS as u64 - 1,
        "one compile, everyone else reuses it: {summary:?}"
    );
    assert!(summary.coalesced >= 1);
    // The wire marks coalesced responses distinctly.
    let coalesced_on_wire = responses
        .iter()
        .filter(|r| r.get("cache").and_then(Json::string) == Some("coalesced"))
        .count() as u64;
    assert_eq!(coalesced_on_wire, summary.coalesced);
}

/// Acceptance pin: quota exhaustion is a typed `S121` over the wire.
#[test]
fn quota_rejection_over_tcp() {
    let server = start(ServeConfig {
        quota_overrides: vec![(
            "hog".to_string(),
            QuotaConfig {
                capacity: 1.0,
                refill_per_sec: 0.0,
            },
        )],
        ..ServeConfig::default()
    });
    let (stream, mut reader) = connect(&server);
    let r = round_trip(&stream, &mut reader, &compile_line(1, "hog", SRC));
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
    let r = round_trip(&stream, &mut reader, &compile_line(2, "hog", SRC));
    assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(r.get("code").and_then(Json::string), Some("S121"));
    assert_eq!(r.get("id").and_then(Json::u64), Some(2));
    // Other tenants are unaffected on the same connection.
    let r = round_trip(&stream, &mut reader, &compile_line(3, "polite", SRC));
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
    drop((stream, reader));
    let summary = server.shutdown();
    assert_eq!(summary.rejected_quota, 1);
}

/// An oversized request line over the wire — even as the very first
/// line of the connection — is answered with the typed rejection and
/// the connection keeps serving in order.
#[test]
fn oversized_lines_over_tcp_are_rejected_and_the_connection_survives() {
    let server = start(ServeConfig {
        max_line_bytes: 512,
        ..ServeConfig::default()
    });
    let (stream, mut reader) = connect(&server);

    // First line oversized: the reader must resynchronize on it.
    let huge = compile_line(1, "", &format!("kernel k {{ {} }}", "x".repeat(4096)));
    let r = round_trip(&stream, &mut reader, &huge);
    assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(r.get("kind").and_then(Json::string), Some("request"));
    assert!(
        r.get("error")
            .and_then(Json::string)
            .is_some_and(|e| e.contains("512-byte cap")),
        "{}",
        r.to_compact()
    );

    // The same connection then pipelines normally, including another
    // oversized line mid-stream.
    let r = round_trip(&stream, &mut reader, &compile_line(2, "", SRC));
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(r.get("id").and_then(Json::u64), Some(2));
    let r = round_trip(&stream, &mut reader, &huge);
    assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
    let r = round_trip(&stream, &mut reader, "{\"v\":1,\"id\":3,\"cmd\":\"ping\"}");
    assert_eq!(r.get("pong"), Some(&Json::Bool(true)));

    drop((stream, reader));
    let summary = server.shutdown();
    assert_eq!(summary.errors, 2);
    assert_eq!(summary.compiled, 1);
}

/// Panic isolation over the wire: a compile that panics inside the
/// handler answers `S112` on its own connection while other
/// connections (and later requests on the same one) are unaffected.
#[test]
fn panicked_compile_over_tcp_answers_s112_and_the_pool_survives() {
    let server = start(ServeConfig {
        panic_on_name: Some("boom".to_string()),
        ..ServeConfig::default()
    });
    let (stream, mut reader) = connect(&server);

    let boom = Json::obj(vec![
        ("v", Json::num(1)),
        ("id", Json::num(1)),
        ("cmd", Json::str("compile")),
        ("name", Json::str("boom")),
        ("source", Json::str(SRC)),
    ])
    .to_compact();
    let r = round_trip(&stream, &mut reader, &boom);
    assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(r.get("code").and_then(Json::string), Some("S112"));
    assert_eq!(r.get("id").and_then(Json::u64), Some(1));

    // Same connection still answers...
    let r = round_trip(&stream, &mut reader, &compile_line(2, "", SRC));
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
    // ...and so does a fresh one.
    let (stream2, mut reader2) = connect(&server);
    let r = round_trip(&stream2, &mut reader2, &compile_line(3, "", SRC));
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)));

    drop((stream, reader));
    drop((stream2, reader2));
    let summary = server.shutdown();
    assert_eq!(summary.errors, 1);
    assert_eq!(summary.compiled, 2);
}

#[test]
fn metrics_endpoint_speaks_http() {
    let server = start(ServeConfig::default());
    // Prime a counter so the exposition is non-trivial.
    let (stream, mut reader) = connect(&server);
    round_trip(&stream, &mut reader, &compile_line(1, "", SRC));
    drop((stream, reader));

    let mut http = TcpStream::connect(server.local_addr()).expect("connect");
    write!(http, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").expect("send request");
    let mut response = String::new();
    http.read_to_string(&mut response).expect("read response");
    assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
    assert!(response.contains("Content-Type: text/plain"), "{response}");
    assert!(
        response.contains("slp_serve_compiled_total 1\n"),
        "{response}"
    );
    assert!(
        response.contains("slp_cache_stores_total 1\n"),
        "{response}"
    );
    server.shutdown();
}

/// A `shutdown` request over TCP ends the whole server via `wait()`,
/// and the drain answers everything already admitted.
#[test]
fn shutdown_request_drains_the_server() {
    let server = start(ServeConfig {
        compile_hold_ms: 150,
        ..ServeConfig::default()
    });
    let addr = server.local_addr();

    // A slow compile in flight on one connection...
    let slow = thread::spawn(move || {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        round_trip(&stream, &mut reader, &compile_line(1, "", SRC))
    });
    while server.handler().active() == 0 {
        thread::sleep(Duration::from_millis(1));
    }
    // ...while another connection asks the server to shut down.
    let (stream, mut reader) = connect(&server);
    let r = round_trip(
        &stream,
        &mut reader,
        "{\"v\":1,\"id\":9,\"cmd\":\"shutdown\"}",
    );
    assert_eq!(r.get("shutdown"), Some(&Json::Bool(true)));

    let summary = server.wait();
    let slow_response = slow.join().expect("slow client");
    assert_eq!(
        slow_response.get("ok"),
        Some(&Json::Bool(true)),
        "the admitted compile must be answered before the server dies"
    );
    assert_eq!(summary.compiled, 1);

    // The listener is really gone.
    thread::sleep(Duration::from_millis(20));
    assert!(
        TcpStream::connect(addr).is_err() || {
            // Some kernels accept briefly after close; a dead server
            // must at least not answer.
            let s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_millis(100))).ok();
            let mut buf = [0u8; 1];
            writeln!(&mut (&s), "{{\"cmd\":\"stats\"}}").ok();
            matches!((&s).read(&mut buf), Ok(0) | Err(_))
        }
    );
}

/// Pipelining: many requests written before any response is read still
/// produce in-order, id-matched responses.
#[test]
fn pipelined_requests_answer_in_order() {
    const N: u64 = 10;
    let server = start(ServeConfig::default());
    let (stream, mut reader) = connect(&server);
    let mut batch = String::new();
    for id in 0..N {
        batch.push_str(&compile_line(id, "", SRC));
        batch.push('\n');
    }
    (&stream).write_all(batch.as_bytes()).expect("write batch");
    for id in 0..N {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response");
        let r = Json::parse(line.trim_end()).expect("parses");
        assert_eq!(r.get("id").and_then(Json::u64), Some(id), "order preserved");
    }
    drop((stream, reader));
    server.shutdown();
}

/// The deterministic load generator against a real server: valid
/// traffic must produce zero protocol errors, and the same seed must
/// reproduce the same request stream.
#[test]
fn loadgen_sees_zero_protocol_errors() {
    let server = start(ServeConfig {
        quota_overrides: vec![(
            "hog".to_string(),
            QuotaConfig {
                capacity: 2.0,
                refill_per_sec: 0.0,
            },
        )],
        ..ServeConfig::default()
    });
    let config = LoadConfig {
        connections: 4,
        requests_per_connection: 15,
        seed: 42,
        mix: LoadMix::default(),
        quota_tenant: "hog".to_string(),
    };
    let report = loadgen::run(server.local_addr(), &config).expect("loadgen run");
    assert_eq!(report.sent, 4 * 15);
    assert_eq!(
        report.protocol_errors, 0,
        "a healthy server never violates its own protocol"
    );
    assert!(report.ok > 0);
    assert_eq!(report.latencies_nanos.len() as u64, report.sent);
    assert!(report.throughput_rps() > 0.0);
    let summary = server.shutdown();
    assert_eq!(summary.requests, report.sent);
}
