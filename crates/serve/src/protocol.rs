//! The `slpd` wire protocol: the versioned v1 envelope, the legacy
//! bare form, and the `S100`-series machine-readable error codes.
//!
//! # The v1 envelope
//!
//! A request is one line of JSON carrying `"v": 1`:
//!
//! ```json
//! {"v":1,"id":"req-7","tenant":"team-a","cmd":"compile","source":"kernel k { … }"}
//! ```
//!
//! * `v` — protocol version, must be the number `1`;
//! * `id` — optional request correlator (string or number), echoed
//!   verbatim in the response so clients may pipeline;
//! * `tenant` — optional tenant key for quota accounting (defaults to
//!   the anonymous tenant `""`);
//! * `cmd` — the verb: `compile`, `stats`, `ping`, `shutdown`.
//!
//! Every v1 response echoes `v` and `id` and carries `ok`. Failures
//! add a stable `code` from the table below plus a human-readable
//! `error`:
//!
//! | code   | meaning                                             |
//! |--------|-----------------------------------------------------|
//! | `S100` | malformed request (bad JSON, missing/invalid field) |
//! | `S101` | unknown `cmd`                                       |
//! | `S102` | unsupported protocol version                        |
//! | `S103` | request line exceeded the server's byte cap         |
//! | `S110` | kernel source did not parse                         |
//! | `S111` | kernel parsed but failed semantic validation        |
//! | `S112` | compiler panic (caught; the server survives)        |
//! | `S113` | compile exceeded its time budget                    |
//! | `S114` | kernel proven memory-unsafe before compilation      |
//! | `S120` | overloaded: in-flight admission cap reached         |
//! | `S121` | tenant quota exhausted (token bucket empty)         |
//! | `S122` | server is draining; request not admitted            |
//!
//! # The legacy bare form
//!
//! A request without a `"v"` field is a legacy request (the protocol
//! `slpd` spoke before versioning). It is answered in the legacy
//! response shape: no `v`, no `id`, errors carry the historical `kind`
//! strings (`request`/`parse`/`invalid`/`panic`/`timeout`) instead of
//! codes. Conditions that postdate the legacy protocol (admission,
//! quotas, drain) use their [`ErrorCode::legacy_kind`] names. The
//! compat test suite pins both shapes.

use slp_core::SlpConfig;
use slp_driver::json::Json;
use slp_driver::{
    parse_machine, parse_strategy, CompileOutcome, CompileRequest, DriverError, VerifyLevel,
};

/// The stable machine-readable error codes of the v1 protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// `S100`: malformed request — invalid JSON, missing or ill-typed
    /// field.
    BadRequest,
    /// `S101`: the `cmd` verb is not one the server knows.
    UnknownCommand,
    /// `S102`: the request carried a `v` other than `1`.
    BadVersion,
    /// `S103`: the request line exceeded
    /// [`ServeConfig::max_line_bytes`](crate::ServeConfig::max_line_bytes)
    /// and was discarded unread.
    LineTooLong,
    /// `S110`: the kernel source did not parse.
    ParseError,
    /// `S111`: the kernel parsed but failed semantic validation.
    InvalidProgram,
    /// `S112`: the compiler panicked (caught by the guard thread).
    CompilerPanic,
    /// `S113`: the compile exceeded its time budget.
    BudgetExceeded,
    /// `S114`: the memory-safety certificate pass proved an array
    /// access out of bounds (V505), so the kernel was rejected before
    /// any compile work was spent on it.
    ProvenUnsafe,
    /// `S120`: the in-flight admission cap was reached.
    Overloaded,
    /// `S121`: the tenant's token-bucket quota is exhausted.
    QuotaExhausted,
    /// `S122`: the server is draining and admits no new compiles.
    Draining,
}

impl ErrorCode {
    /// The stable wire code (`"S100"`…`"S122"`).
    pub fn code(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "S100",
            ErrorCode::UnknownCommand => "S101",
            ErrorCode::BadVersion => "S102",
            ErrorCode::LineTooLong => "S103",
            ErrorCode::ParseError => "S110",
            ErrorCode::InvalidProgram => "S111",
            ErrorCode::CompilerPanic => "S112",
            ErrorCode::BudgetExceeded => "S113",
            ErrorCode::ProvenUnsafe => "S114",
            ErrorCode::Overloaded => "S120",
            ErrorCode::QuotaExhausted => "S121",
            ErrorCode::Draining => "S122",
        }
    }

    /// The `kind` string used when answering a *legacy* request. The
    /// first five mirror the historical serve loop exactly; the
    /// admission-era conditions get descriptive names (the legacy
    /// protocol never produced them).
    pub fn legacy_kind(self) -> &'static str {
        match self {
            ErrorCode::BadRequest
            | ErrorCode::UnknownCommand
            | ErrorCode::BadVersion
            | ErrorCode::LineTooLong => "request",
            ErrorCode::ParseError => "parse",
            ErrorCode::InvalidProgram => "invalid",
            ErrorCode::CompilerPanic => "panic",
            ErrorCode::BudgetExceeded => "timeout",
            ErrorCode::ProvenUnsafe => "unsafe",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::QuotaExhausted => "quota",
            ErrorCode::Draining => "draining",
        }
    }

    /// Maps a driver failure onto its wire code.
    pub fn from_driver(err: &DriverError) -> ErrorCode {
        match err {
            DriverError::Parse(_) => ErrorCode::ParseError,
            DriverError::Invalid(_) => ErrorCode::InvalidProgram,
            DriverError::Panic(_) => ErrorCode::CompilerPanic,
            DriverError::Timeout(_) => ErrorCode::BudgetExceeded,
        }
    }
}

/// Which protocol shape a request arrived in, plus its envelope fields.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// `false` for legacy bare-form requests.
    pub v1: bool,
    /// The request's `id`, echoed verbatim in v1 responses
    /// ([`Json::Null`] when absent).
    pub id: Json,
    /// The quota tenant (`""` when absent — the anonymous tenant).
    pub tenant: String,
}

impl Envelope {
    /// The legacy envelope (bare-form request, anonymous tenant).
    pub fn legacy() -> Envelope {
        Envelope {
            v1: false,
            id: Json::Null,
            tenant: String::new(),
        }
    }

    fn v1_base(&self) -> Vec<(&'static str, Json)> {
        vec![("v", Json::num(1)), ("id", self.id.clone())]
    }

    /// An `ok:false` response in this envelope's shape.
    pub fn error(&self, code: ErrorCode, message: &str) -> Json {
        if self.v1 {
            let mut fields = self.v1_base();
            fields.push(("ok", Json::Bool(false)));
            fields.push(("code", Json::str(code.code())));
            fields.push(("error", Json::str(message)));
            Json::obj(fields)
        } else {
            Json::obj(vec![
                ("ok", Json::Bool(false)),
                ("kind", Json::str(code.legacy_kind())),
                ("error", Json::str(message)),
            ])
        }
    }

    /// An `ok:true` response wrapping `fields` in this envelope's
    /// shape.
    pub fn ok(&self, fields: Vec<(&'static str, Json)>) -> Json {
        let mut out = if self.v1 { self.v1_base() } else { Vec::new() };
        out.push(("ok", Json::Bool(true)));
        out.extend(fields);
        Json::obj(out)
    }
}

/// A parsed request line: the envelope plus the verb and its body.
#[derive(Debug)]
pub enum Request {
    /// `cmd: "compile"` with its parsed [`CompileRequest`] and optional
    /// per-request budget.
    Compile {
        /// The envelope the response must use.
        envelope: Envelope,
        /// The driver request.
        request: Box<CompileRequest>,
        /// `budget_ms` field, if present.
        budget_ms: Option<u64>,
    },
    /// `cmd: "stats"`.
    Stats(Envelope),
    /// `cmd: "ping"` (v1 only; legacy never had it but accepting it
    /// everywhere is harmless).
    Ping(Envelope),
    /// `cmd: "shutdown"`.
    Shutdown(Envelope),
    /// The line could not be turned into a request; the payload is the
    /// ready-to-send error response.
    Malformed(Json),
}

/// Parses one request line into a [`Request`], with every failure
/// already rendered as the correctly-shaped error response.
pub fn parse_request(line: &str) -> Request {
    let raw = match Json::parse(line) {
        Ok(v) => v,
        // Unparseable lines cannot name a protocol version; answer in
        // the legacy shape, which is also what v1 clients must expect
        // for garbage (the `kind` key is absent there — `code` is not —
        // so the shapes stay distinguishable).
        Err(e) => {
            return Request::Malformed(
                Envelope::legacy()
                    .error(ErrorCode::BadRequest, &format!("invalid request JSON: {e}")),
            )
        }
    };

    let envelope = match raw.get("v") {
        None => Envelope::legacy(),
        Some(v) => {
            let id = raw.get("id").cloned().unwrap_or(Json::Null);
            let tenant = raw
                .get("tenant")
                .and_then(Json::string)
                .unwrap_or("")
                .to_string();
            let envelope = Envelope {
                v1: true,
                id,
                tenant,
            };
            if v.u64() != Some(1) {
                return Request::Malformed(envelope.error(
                    ErrorCode::BadVersion,
                    &format!(
                        "unsupported protocol version {} (this server speaks v1)",
                        v.to_compact()
                    ),
                ));
            }
            envelope
        }
    };

    let cmd = match raw.get("cmd").and_then(Json::string) {
        Some(c) => c,
        None => {
            return Request::Malformed(
                envelope.error(ErrorCode::BadRequest, "missing string field \"cmd\""),
            )
        }
    };
    match cmd {
        "compile" => match parse_compile_body(&raw) {
            Ok((request, budget_ms)) => Request::Compile {
                envelope,
                request: Box::new(request),
                budget_ms,
            },
            Err(msg) => Request::Malformed(envelope.error(ErrorCode::BadRequest, &msg)),
        },
        "stats" => Request::Stats(envelope),
        "ping" => Request::Ping(envelope),
        "shutdown" => Request::Shutdown(envelope),
        other => Request::Malformed(
            envelope.error(ErrorCode::UnknownCommand, &format!("unknown cmd {other:?}")),
        ),
    }
}

/// Builds a [`CompileRequest`] (plus budget) from a `compile` verb's
/// fields, or an error message naming the offending field.
fn parse_compile_body(req: &Json) -> Result<(CompileRequest, Option<u64>), String> {
    let source = req
        .get("source")
        .and_then(Json::string)
        .ok_or("missing string field \"source\"")?
        .to_string();
    let name = req
        .get("name")
        .and_then(Json::string)
        .unwrap_or("<anonymous>")
        .to_string();

    let strategy_name = req
        .get("strategy")
        .and_then(Json::string)
        .unwrap_or("global");
    let strategy = parse_strategy(strategy_name)
        .ok_or_else(|| format!("unknown strategy {strategy_name:?}"))?;
    let machine_name = req.get("machine").and_then(Json::string).unwrap_or("intel");
    let machine =
        parse_machine(machine_name).ok_or_else(|| format!("unknown machine {machine_name:?}"))?;
    let verify_name = req.get("verify").and_then(Json::string).unwrap_or("static");
    let verify = VerifyLevel::from_name(verify_name)
        .ok_or_else(|| format!("unknown verify level {verify_name:?}"))?;

    let mut config = SlpConfig::for_machine(machine, strategy);
    if let Some(unroll) = req.get("unroll") {
        config.unroll = usize::try_from(unroll.u64().ok_or("field \"unroll\" must be an integer")?)
            .map_err(|_| "field \"unroll\" out of range")?;
    }
    if let Some(layout) = req.get("layout") {
        if layout.bool().ok_or("field \"layout\" must be a boolean")? {
            config = config.with_layout();
        }
    }
    let budget_ms = match req.get("budget_ms") {
        Some(b) => Some(b.u64().ok_or("field \"budget_ms\" must be an integer")?),
        None => None,
    };

    Ok((
        CompileRequest {
            name,
            source,
            config,
            verify,
        },
        budget_ms,
    ))
}

/// The success-response body of a compile (shared by both envelope
/// shapes; the envelope wraps it). `via_coalesce` marks a request that
/// piggy-backed on an identical in-flight compile — its `cache` field
/// reads `"coalesced"` since neither tier nor a fresh compile answered
/// *this* request.
pub fn outcome_fields(
    name: &str,
    outcome: &CompileOutcome,
    via_coalesce: bool,
) -> Vec<(&'static str, Json)> {
    let mut fields = vec![
        ("name", Json::str(name)),
        (
            "cache",
            Json::str(if via_coalesce {
                "coalesced"
            } else {
                outcome.cache.name()
            }),
        ),
        ("fingerprint", Json::str(outcome.fingerprint.to_hex())),
        ("stmts", Json::num(outcome.kernel.stats.stmts as u64)),
        (
            "superwords",
            Json::num(outcome.kernel.stats.superwords as u64),
        ),
        (
            "vectorized_stmts",
            Json::num(outcome.kernel.stats.vectorized_stmts as u64),
        ),
    ];
    match &outcome.report {
        Some(report) => {
            fields.push(("verify_errors", Json::num(report.error_count() as u64)));
            fields.push(("verify_warnings", Json::num(report.warning_count() as u64)));
            fields.push((
                "diagnostics",
                Json::Arr(
                    report
                        .diagnostics
                        .iter()
                        .map(|d| Json::str(d.to_string()))
                        .collect(),
                ),
            ));
        }
        None => {
            fields.push(("verify_errors", Json::Null));
            fields.push(("verify_warnings", Json::Null));
            fields.push(("diagnostics", Json::Arr(Vec::new())));
        }
    }
    fields.push((
        "prove",
        outcome.prove.map_or(Json::Null, |v| Json::str(v.name())),
    ));
    fields.push(("phase_nanos", slp_driver::timings_json(&outcome.timings)));
    fields.push(("wall_nanos", Json::num(outcome.wall_nanos)));
    fields
}
