//! The transport-agnostic request handler: one request line in, one
//! response out.
//!
//! [`Handler`] owns everything a serving session shares across
//! connections — the compile cache, the in-flight deduplication table,
//! the per-tenant token buckets, the admission gauge and the serve
//! counters — so the stdio loop, the TCP server and the tests all
//! drive the *same* object and observe the same semantics.
//!
//! A `compile` request passes through five gates, in order:
//!
//! 1. **drain** — a draining handler admits no new compiles
//!    ([`ErrorCode::Draining`]); in-flight ones run to completion;
//! 2. **quota** — the request's tenant takes one token from its bucket
//!    ([`ErrorCode::QuotaExhausted`] when empty). Rejections touch
//!    nothing shared — in particular they can never poison the cache;
//! 3. **admission** — the global in-flight gauge is bumped; past
//!    [`ServeConfig::max_in_flight`] the request is rejected with
//!    [`ErrorCode::Overloaded`] instead of queueing unboundedly;
//! 4. **safety** — the memory-safety certificate pass runs over the
//!    parsed source; a kernel with a proven out-of-bounds access (V505)
//!    is rejected with [`ErrorCode::ProvenUnsafe`] before any compile
//!    work is spent on it;
//! 5. **dedup** — requests with an identical fingerprint already
//!    compiling *join* that compile instead of starting their own: the
//!    leader compiles once, followers block on the slot and get a clone
//!    of the result, reported as `"cache":"coalesced"`.
//!
//! Every counter is atomic; a [`ServeSummary`] snapshot is exact once
//! the writers are quiescent, which the concurrency tests pin.
//!
//! The handler is panic-hardened: transports enter through
//! [`Handler::handle_line_guarded`], a dedup leader that unwinds still
//! publishes an error to its followers (so they never hang), and every
//! internal lock tolerates poisoning — a panicked compile degrades
//! that one request to an `S112` response instead of wedging the pool.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use slp_core::PhaseTimings;
use slp_driver::json::Json;
use slp_driver::{
    compile_guarded, stats_json, timings_json, CacheDisposition, CompileCache, CompileOutcome,
    CompileRequest, DriverError, Fingerprint, ServeSummary,
};

use crate::protocol::{outcome_fields, parse_request, Envelope, ErrorCode, Request};

/// A per-tenant token bucket: `capacity` tokens, refilled continuously
/// at `refill_per_sec`. One compile request costs one token.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuotaConfig {
    /// Maximum (and initial) token balance.
    pub capacity: f64,
    /// Tokens restored per second (0 = a fixed allowance, never
    /// refilled).
    pub refill_per_sec: f64,
}

/// Handler knobs. All fields are public; start from `..Default::default()`.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Admission cap: compile requests in flight at once (leaders and
    /// coalesced followers alike). `0` disables the cap.
    pub max_in_flight: usize,
    /// The default per-tenant quota; `None` serves every tenant
    /// unmetered (tenants named in `quota_overrides` are still
    /// metered).
    pub quota: Option<QuotaConfig>,
    /// Per-tenant quota overrides, consulted before `quota`.
    pub quota_overrides: Vec<(String, QuotaConfig)>,
    /// Budget applied to compile requests that do not carry their own
    /// `budget_ms`.
    pub default_budget_ms: Option<u64>,
    /// Whether identical in-flight fingerprints are coalesced onto one
    /// compile.
    pub dedup: bool,
    /// Test instrumentation: artificial delay (milliseconds) inserted
    /// while a leader holds its dedup slot, before compiling. Makes
    /// coalescing and drain windows deterministic in the concurrency
    /// tests; leave `0` in production.
    pub compile_hold_ms: u64,
    /// Longest request line (bytes, newline excluded) the transports
    /// will buffer. Past the cap the line is discarded in constant
    /// memory and answered with [`ErrorCode::LineTooLong`] (`S103`);
    /// the session keeps serving. `0` disables the cap.
    pub max_line_bytes: usize,
    /// Test instrumentation: a compile whose request `name` matches
    /// panics deliberately *while holding the in-flight table lock* —
    /// the worst place a compiler bug could fire. The panic-isolation
    /// tests use it to pin that a poisoned lock degrades one request,
    /// not the server. Leave `None` in production.
    pub panic_on_name: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_in_flight: 256,
            quota: None,
            quota_overrides: Vec::new(),
            default_budget_ms: None,
            dedup: true,
            compile_hold_ms: 0,
            max_line_bytes: 1 << 20,
            panic_on_name: None,
        }
    }
}

/// Locks `mutex`, tolerating poisoning: a thread that panicked while
/// holding a handler lock must degrade *its* request to an error
/// response, not wedge every request that comes after it. All handler
/// state stays consistent under `into_inner` because every critical
/// section leaves the data valid before any operation that can panic
/// (the compile itself runs outside the locks).
pub(crate) fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`] with the same poison tolerance as
/// [`lock_unpoisoned`].
pub(crate) fn wait_unpoisoned<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// One handled request: the response document plus whether the request
/// asked the session to shut down.
#[derive(Debug, Clone)]
pub struct Response {
    /// The response, ready to be written as one line.
    pub json: Json,
    /// `true` for an acknowledged `shutdown` verb — the transport
    /// should drain and close.
    pub shutdown: bool,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    accepted: AtomicU64,
    compiled: AtomicU64,
    cache_hits: AtomicU64,
    coalesced: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_quota: AtomicU64,
    rejected_unsafe: AtomicU64,
    errors: AtomicU64,
    /// Gauge: compile requests currently inside the admission gate.
    active: AtomicU64,
}

struct Bucket {
    tokens: f64,
    last_refill: Instant,
}

/// The dedup slot an in-flight compile publishes its result through.
struct InflightSlot {
    result: Mutex<Option<Result<CompileOutcome, DriverError>>>,
    done: Condvar,
}

/// Guarantees a dedup leader always publishes: if the leader unwinds
/// before the normal publish path, the guard retires the slot and
/// publishes a [`DriverError::Panic`] so blocked followers wake with
/// an `S112` answer instead of hanging forever.
struct SlotPublishGuard<'a> {
    handler: &'a Handler,
    fp: Fingerprint,
    slot: &'a Arc<InflightSlot>,
    armed: bool,
}

impl Drop for SlotPublishGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        lock_unpoisoned(&self.handler.inflight).remove(&self.fp);
        *lock_unpoisoned(&self.slot.result) = Some(Err(DriverError::Panic(
            "compile leader panicked before publishing a result".into(),
        )));
        self.slot.done.notify_all();
    }
}

/// Decrements the active gauge even on unwind paths.
struct ActiveGuard<'a>(&'a AtomicU64);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The shared serving core. See the module docs for the gate order.
pub struct Handler {
    cache: Arc<CompileCache>,
    config: ServeConfig,
    counters: Counters,
    inflight: Mutex<HashMap<Fingerprint, Arc<InflightSlot>>>,
    buckets: Mutex<HashMap<String, Bucket>>,
    phase_totals: Mutex<PhaseTimings>,
    draining: AtomicBool,
}

impl std::fmt::Debug for Handler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Handler")
            .field("config", &self.config)
            .field("draining", &self.draining.load(Ordering::Relaxed))
            .field("active", &self.active())
            .finish()
    }
}

impl Handler {
    /// A handler serving from (and filling) `cache` under `config`.
    pub fn new(cache: Arc<CompileCache>, config: ServeConfig) -> Handler {
        Handler {
            cache,
            config,
            counters: Counters::default(),
            inflight: Mutex::new(HashMap::new()),
            buckets: Mutex::new(HashMap::new()),
            phase_totals: Mutex::new(PhaseTimings::new()),
            draining: AtomicBool::new(false),
        }
    }

    /// Convenience: a defaulted handler around a fresh cache.
    pub fn with_cache(cache: CompileCache) -> Handler {
        Handler::new(Arc::new(cache), ServeConfig::default())
    }

    /// The shared compile cache.
    pub fn cache(&self) -> &CompileCache {
        &self.cache
    }

    /// Compile requests currently inside the admission gate.
    pub fn active(&self) -> u64 {
        self.counters.active.load(Ordering::Relaxed)
    }

    /// Stops admitting new compiles; in-flight ones run to completion.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Whether [`Handler::begin_drain`] was called.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Records a connection-level overload rejection (e.g. the TCP
    /// accept queue was full — the handler never saw a request line).
    pub fn note_connection_rejected(&self) {
        self.counters
            .rejected_overload
            .fetch_add(1, Ordering::Relaxed);
    }

    /// An exact snapshot of the serve counters (exact once writers are
    /// quiescent).
    pub fn summary(&self) -> ServeSummary {
        let c = &self.counters;
        ServeSummary {
            requests: c.requests.load(Ordering::Relaxed),
            accepted: c.accepted.load(Ordering::Relaxed),
            compiled: c.compiled.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            coalesced: c.coalesced.load(Ordering::Relaxed),
            rejected_overload: c.rejected_overload.load(Ordering::Relaxed),
            rejected_quota: c.rejected_quota.load(Ordering::Relaxed),
            rejected_unsafe: c.rejected_unsafe.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
        }
    }

    /// The transports' line cap (see [`ServeConfig::max_line_bytes`]).
    pub fn max_line_bytes(&self) -> usize {
        self.config.max_line_bytes
    }

    /// The response for a request line the transport discarded at the
    /// [`ServeConfig::max_line_bytes`] cap. Counted as a request and an
    /// error; answered in the legacy shape since an unread line cannot
    /// name a protocol version (the same convention as unparseable
    /// JSON).
    pub fn reject_oversized_line(&self) -> Response {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        self.counters.errors.fetch_add(1, Ordering::Relaxed);
        Response {
            json: Envelope::legacy().error(
                ErrorCode::LineTooLong,
                &format!(
                    "request line exceeds the {}-byte cap and was discarded",
                    self.config.max_line_bytes
                ),
            ),
            shutdown: false,
        }
    }

    /// [`Handler::handle_line`] behind a panic guard: a panic escaping
    /// the handler — a compiler invariant violation outside the compile
    /// guard's own net, or a bug in the serve layer itself — is caught
    /// here and degraded to an `S112` error response, so the serving
    /// thread (stdio loop or TCP worker) survives and keeps answering.
    /// The transports call this, never `handle_line` directly.
    pub fn handle_line_guarded(&self, line: &str) -> Response {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.handle_line(line))) {
            Ok(response) => response,
            Err(_) => {
                // `handle_line` already counted the request; the panic
                // skipped its error accounting.
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                let envelope = match parse_request(line) {
                    Request::Compile { envelope, .. }
                    | Request::Stats(envelope)
                    | Request::Ping(envelope)
                    | Request::Shutdown(envelope) => envelope,
                    Request::Malformed(_) => Envelope::legacy(),
                };
                Response {
                    json: envelope.error(
                        ErrorCode::CompilerPanic,
                        "request handling panicked; the request was abandoned and the server \
                         kept serving",
                    ),
                    shutdown: false,
                }
            }
        }
    }

    /// Handles one request line and returns the response to write.
    pub fn handle_line(&self, line: &str) -> Response {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let (json, shutdown) = match parse_request(line) {
            Request::Malformed(response) => (response, false),
            Request::Compile {
                envelope,
                request,
                budget_ms,
            } => (self.handle_compile(&envelope, &request, budget_ms), false),
            Request::Stats(envelope) => (self.handle_stats(&envelope), false),
            Request::Ping(envelope) => (envelope.ok(vec![("pong", Json::Bool(true))]), false),
            Request::Shutdown(envelope) => {
                (envelope.ok(vec![("shutdown", Json::Bool(true))]), true)
            }
        };
        if !matches!(json.get("ok"), Some(Json::Bool(true))) {
            self.counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        Response { json, shutdown }
    }

    fn handle_stats(&self, envelope: &Envelope) -> Json {
        let summary = self.summary();
        if envelope.v1 {
            envelope.ok(vec![
                ("cache", stats_json(&self.cache.stats())),
                ("serve", summary.to_json()),
                ("active", Json::num(self.active())),
                ("draining", Json::Bool(self.draining())),
            ])
        } else {
            // The legacy stats shape, pinned by the compat tests.
            envelope.ok(vec![
                ("cache", stats_json(&self.cache.stats())),
                ("requests", Json::num(summary.requests)),
                ("compiled", Json::num(summary.compiled)),
            ])
        }
    }

    fn handle_compile(
        &self,
        envelope: &Envelope,
        request: &CompileRequest,
        budget_ms: Option<u64>,
    ) -> Json {
        // Gate 1: drain.
        if self.draining() {
            return envelope.error(
                ErrorCode::Draining,
                "server is draining and admits no new compiles",
            );
        }
        // Gate 2: tenant quota.
        if !self.take_token(&envelope.tenant) {
            self.counters.rejected_quota.fetch_add(1, Ordering::Relaxed);
            return envelope.error(
                ErrorCode::QuotaExhausted,
                &format!(
                    "tenant {:?} has exhausted its request quota",
                    envelope.tenant
                ),
            );
        }
        // Gate 3: admission.
        let cap = self.config.max_in_flight;
        let active = self.counters.active.fetch_add(1, Ordering::Relaxed) + 1;
        let _guard = ActiveGuard(&self.counters.active);
        if cap != 0 && active as usize > cap {
            self.counters
                .rejected_overload
                .fetch_add(1, Ordering::Relaxed);
            return envelope.error(
                ErrorCode::Overloaded,
                &format!("server at its in-flight cap ({cap}); retry later"),
            );
        }
        self.counters.accepted.fetch_add(1, Ordering::Relaxed);

        // Gate 4: safety. A kernel whose memory-safety certificate
        // proves an out-of-bounds access would fail verification after
        // the full compile pipeline ran; the certificate alone decides
        // that, so the request is rejected before any packing or
        // scheduling work (and before it can occupy a dedup slot).
        // Sources that do not parse fall through: the compile path owns
        // the parse error and its `S110` code.
        if let Some(cert) = slp_driver::certify_source(&request.source) {
            if cert.proven_faulting() > 0 {
                self.counters
                    .rejected_unsafe
                    .fetch_add(1, Ordering::Relaxed);
                let detail = cert
                    .accesses
                    .iter()
                    .find(|a| a.verdict == slp_core::AccessVerdict::ProvenFaulting)
                    .map(|a| a.detail.clone())
                    .unwrap_or_default();
                return envelope.error(
                    ErrorCode::ProvenUnsafe,
                    &format!(
                        "kernel {:?} is proven memory-unsafe and was rejected before \
                         compilation: {detail}",
                        request.name
                    ),
                );
            }
        }

        // Gate 5: dedup, then compile.
        let budget = budget_ms.or(self.config.default_budget_ms);
        let (result, coalesced) = self.compile_deduped(request, budget);
        match result {
            Ok(outcome) => {
                self.counters.compiled.fetch_add(1, Ordering::Relaxed);
                if coalesced {
                    self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                } else {
                    if outcome.cache_hit() {
                        self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    if outcome.cache == CacheDisposition::Compiled {
                        // Telemetry counts work actually performed, so
                        // cached (re-served) timings are not re-merged.
                        lock_unpoisoned(&self.phase_totals).merge(&outcome.timings);
                    }
                }
                envelope.ok(outcome_fields(&request.name, &outcome, coalesced))
            }
            Err(err) => envelope.error(ErrorCode::from_driver(&err), &err.to_string()),
        }
    }

    /// Runs one compile under the dedup table: the first request for a
    /// fingerprint becomes the leader and compiles; concurrent
    /// duplicates block on the slot and reuse the leader's result.
    /// Returns the result plus whether it was coalesced.
    fn compile_deduped(
        &self,
        request: &CompileRequest,
        budget_ms: Option<u64>,
    ) -> (Result<CompileOutcome, DriverError>, bool) {
        if !self.config.dedup {
            return (
                compile_guarded(request, Some(&self.cache), budget_ms),
                false,
            );
        }
        let fp = request.fingerprint();
        let slot = {
            let mut inflight = lock_unpoisoned(&self.inflight);
            match inflight.get(&fp) {
                Some(slot) => {
                    // Follower: wait for the leader's published result.
                    // The publish guard below guarantees one arrives
                    // even if the leader panics.
                    let slot = Arc::clone(slot);
                    drop(inflight);
                    let mut result = lock_unpoisoned(&slot.result);
                    while result.is_none() {
                        result = wait_unpoisoned(&slot.done, result);
                    }
                    return (result.clone().expect("published result"), true);
                }
                None => {
                    let slot = Arc::new(InflightSlot {
                        result: Mutex::new(None),
                        done: Condvar::new(),
                    });
                    inflight.insert(fp, Arc::clone(&slot));
                    slot
                }
            }
        };

        // Leader: compile (the guarded path re-checks the cache first),
        // publish, and retire the slot. From here to the publish the
        // guard is armed: any unwind still retires the slot and answers
        // the followers. The hold is test-only — see
        // `ServeConfig::compile_hold_ms`.
        let mut publish = SlotPublishGuard {
            handler: self,
            fp,
            slot: &slot,
            armed: true,
        };
        if self.config.compile_hold_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(
                self.config.compile_hold_ms,
            ));
        }
        if self.config.panic_on_name.as_deref() == Some(request.name.as_str()) {
            // Test instrumentation (`ServeConfig::panic_on_name`):
            // panic while holding the in-flight table lock, poisoning
            // it, to pin that poisoning never outlives the request.
            let _poisoner = lock_unpoisoned(&self.inflight);
            panic!("injected compile panic for {:?}", request.name);
        }
        let result = compile_guarded(request, Some(&self.cache), budget_ms);
        publish.armed = false;
        lock_unpoisoned(&self.inflight).remove(&fp);
        *lock_unpoisoned(&slot.result) = Some(result.clone());
        slot.done.notify_all();
        (result, false)
    }

    /// Takes one token from `tenant`'s bucket; `true` when the request
    /// may proceed (including when the tenant is unmetered).
    fn take_token(&self, tenant: &str) -> bool {
        let quota = self
            .config
            .quota_overrides
            .iter()
            .find(|(name, _)| name == tenant)
            .map(|(_, q)| *q)
            .or(self.config.quota);
        let Some(quota) = quota else { return true };
        let now = Instant::now();
        let mut buckets = lock_unpoisoned(&self.buckets);
        let bucket = buckets.entry(tenant.to_string()).or_insert(Bucket {
            tokens: quota.capacity,
            last_refill: now,
        });
        let elapsed = now.duration_since(bucket.last_refill).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * quota.refill_per_sec).min(quota.capacity);
        bucket.last_refill = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// The `/metrics`-style text exposition: serve counters, cache
    /// counters and accumulated per-phase compile telemetry, one
    /// `name value` line each (Prometheus text format, counters only).
    pub fn metrics_text(&self) -> String {
        let s = self.summary();
        let cache = self.cache.stats();
        let phases = *lock_unpoisoned(&self.phase_totals);
        let mut out = String::new();
        for (name, value) in [
            ("slp_serve_requests_total", s.requests),
            ("slp_serve_accepted_total", s.accepted),
            ("slp_serve_compiled_total", s.compiled),
            ("slp_serve_cache_hits_total", s.cache_hits),
            ("slp_serve_coalesced_total", s.coalesced),
            ("slp_serve_rejected_overload_total", s.rejected_overload),
            ("slp_serve_rejected_quota_total", s.rejected_quota),
            ("slp_serve_rejected_unsafe_total", s.rejected_unsafe),
            ("slp_serve_errors_total", s.errors),
            ("slp_serve_active", self.active()),
            ("slp_serve_draining", u64::from(self.draining())),
            ("slp_cache_memory_hits_total", cache.memory_hits),
            ("slp_cache_disk_hits_total", cache.disk_hits),
            ("slp_cache_misses_total", cache.misses),
            ("slp_cache_stores_total", cache.stores),
            ("slp_cache_evictions_total", cache.evictions),
            ("slp_cache_disk_errors_total", cache.disk_errors),
        ] {
            out.push_str(&format!("{name} {value}\n"));
        }
        for (phase, nanos) in phases.iter() {
            out.push_str(&format!(
                "slp_phase_nanos_total{{phase=\"{}\"}} {nanos}\n",
                phase.name()
            ));
        }
        out
    }

    /// Accumulated per-phase telemetry of the compiles this handler
    /// actually performed (cache hits and coalesced requests excluded).
    pub fn phase_totals(&self) -> PhaseTimings {
        *lock_unpoisoned(&self.phase_totals)
    }

    /// The timings serialization shared with the driver reports,
    /// exposed for the stats verb of adapters.
    pub fn phase_totals_json(&self) -> Json {
        timings_json(&self.phase_totals())
    }
}
