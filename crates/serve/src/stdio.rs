//! The stdio transport: line-delimited JSON over any
//! `BufRead`/`Write` pair.
//!
//! This is the adapter `slpd` (without `--tcp`) runs: one request per
//! input line, one response per output line, flushed immediately. The
//! protocol — both the v1 envelope and the legacy bare form — is
//! documented in [`crate::protocol`]; all semantics (caching, quotas,
//! dedup, counters) live in [`Handler`] and are shared with the TCP
//! adapter.

use std::io::{self, BufRead, Write};
use std::sync::Arc;

use slp_driver::{CompileCache, ServeSummary};

use crate::handler::{Handler, ServeConfig};
use crate::line::{read_line_capped, LineRead};

/// Serves requests from `input` to `output` against `cache` with
/// default [`ServeConfig`] until EOF or a `shutdown` request.
///
/// The drop-in successor of the old `slp_driver::serve` entry point
/// (the cache moved behind an `Arc` so the handler can be shared with
/// other transports).
pub fn serve<R: BufRead, W: Write>(
    input: R,
    output: W,
    cache: Arc<CompileCache>,
) -> io::Result<ServeSummary> {
    let handler = Handler::new(cache, ServeConfig::default());
    serve_handler(input, output, &handler)
}

/// Serves requests from `input` to `output` through an existing
/// [`Handler`] until EOF or a `shutdown` request. Blank lines are
/// ignored; every other line gets exactly one response line. Lines
/// past [`ServeConfig::max_line_bytes`] are discarded in constant
/// memory and answered with `S103`; a request that panics the handler
/// is answered with `S112` — in both cases the loop keeps serving.
pub fn serve_handler<R: BufRead, W: Write>(
    mut input: R,
    mut output: W,
    handler: &Handler,
) -> io::Result<ServeSummary> {
    let cap = handler.max_line_bytes();
    loop {
        let response = match read_line_capped(&mut input, cap)? {
            LineRead::Eof => break,
            LineRead::TooLong { .. } => handler.reject_oversized_line(),
            LineRead::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                handler.handle_line_guarded(&line)
            }
        };
        writeln!(output, "{}", response.json.to_compact())?;
        output.flush()?;
        if response.shutdown {
            break;
        }
    }
    Ok(handler.summary())
}
