//! `loadgen` — deterministic load generator for a running `slpd --tcp`.
//!
//! ```text
//! loadgen --addr HOST:PORT [options]
//!
//! options:
//!   --addr HOST:PORT     server to target (required)
//!   --connections N      concurrent connections     (default: 8)
//!   --requests N         requests per connection    (default: 50)
//!   --seed N             request-stream seed        (default: 1592676784)
//!   --mix W,C,M,Q        warm,cold,malformed,over-quota weights
//!                        (default: 6,2,1,1)
//!   --quota-tenant NAME  tenant for the over-quota class (default: hog)
//!   --json               machine-readable report on stdout
//! ```
//!
//! The stream is a pure function of the seed: same seed, same requests,
//! same expected responses. Exit codes: 0 when the run saw zero
//! protocol errors, 1 otherwise, 2 usage error.

use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;

use slp_driver::json::Json;
use slp_serve::loadgen::{run, LoadConfig, LoadMix};

fn usage() -> ExitCode {
    eprintln!(
        "usage: loadgen --addr HOST:PORT [--connections N] [--requests N] \
         [--seed N] [--mix W,C,M,Q] [--quota-tenant NAME] [--json]"
    );
    ExitCode::from(2)
}

fn parse_mix(text: &str) -> Option<LoadMix> {
    let parts: Vec<u32> = text
        .split(',')
        .map(|p| p.trim().parse().ok())
        .collect::<Option<Vec<u32>>>()?;
    let [warm, cold, malformed, over_quota] = parts.as_slice() else {
        return None;
    };
    Some(LoadMix {
        warm: *warm,
        cold: *cold,
        malformed: *malformed,
        over_quota: *over_quota,
    })
}

fn main() -> ExitCode {
    let mut addr: Option<SocketAddr> = None;
    let mut config = LoadConfig::default();
    let mut json_output = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                let Some(resolved) = args
                    .next()
                    .and_then(|a| a.to_socket_addrs().ok())
                    .and_then(|mut addrs| addrs.next())
                else {
                    return usage();
                };
                addr = Some(resolved);
            }
            "--connections" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => config.connections = n,
                _ => return usage(),
            },
            "--requests" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => config.requests_per_connection = n,
                _ => return usage(),
            },
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => config.seed = n,
                None => return usage(),
            },
            "--mix" => match args.next().as_deref().and_then(parse_mix) {
                Some(mix) => config.mix = mix,
                None => return usage(),
            },
            "--quota-tenant" => match args.next() {
                Some(name) => config.quota_tenant = name,
                None => return usage(),
            },
            "--json" => json_output = true,
            _ => return usage(),
        }
    }
    let Some(addr) = addr else { return usage() };

    let report = match run(addr, &config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::from(1);
        }
    };

    if json_output {
        let doc = Json::obj(vec![
            ("sent", Json::num(report.sent)),
            ("ok", Json::num(report.ok)),
            ("expected_errors", Json::num(report.expected_errors)),
            ("protocol_errors", Json::num(report.protocol_errors)),
            ("throughput_rps", Json::float(report.throughput_rps())),
            ("p50_nanos", Json::num(report.percentile_nanos(50.0))),
            ("p99_nanos", Json::num(report.percentile_nanos(99.0))),
            ("wall_nanos", Json::num(report.wall_nanos)),
        ]);
        println!("{}", doc.to_pretty());
    } else {
        println!(
            "loadgen: {} sent, {} ok, {} expected error(s), {} protocol error(s)",
            report.sent, report.ok, report.expected_errors, report.protocol_errors
        );
        println!(
            "loadgen: {:.0} req/s, p50 {:.2} ms, p99 {:.2} ms",
            report.throughput_rps(),
            report.percentile_nanos(50.0) as f64 / 1e6,
            report.percentile_nanos(99.0) as f64 / 1e6,
        );
    }
    if report.protocol_errors == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
