//! The TCP transport: an accept thread, a worker pool and bounded
//! queues at every stage.
//!
//! ```text
//!            accept thread                worker pool (N threads)
//!  clients ──► TcpListener ──► sync_channel(backlog) ──► connection
//!                │ full? write S120 line, drop            session
//!                ▼                                          │
//!            (admission)                 per-connection     ▼
//!                                 sync_channel(queue_depth) of lines
//! ```
//!
//! Each accepted connection is driven by one worker at a time. The
//! worker reads the first line itself: a line starting with `GET ` is
//! answered as a one-shot HTTP request with the handler's
//! [`metrics_text`](Handler::metrics_text) exposition (so `curl
//! http://host:port/metrics` works against the same port); anything
//! else enters the line protocol. After the first line a reader thread
//! feeds a *bounded* request queue so clients may pipeline up to
//! `queue_depth` requests — past that, TCP backpressure applies
//! instead of unbounded buffering. Every line is read under the
//! handler's `max_line_bytes` cap: an oversized line is discarded in
//! constant memory and answered with one `S103` error line, in order.
//!
//! Shutdown is graceful in both directions: a `shutdown` request (or
//! [`TcpServer::shutdown`]) puts the handler in drain mode — in-flight
//! compiles finish and are answered, new ones get `S122` — then closes
//! the read half of every live connection, joins the pool and returns
//! the final [`ServeSummary`].

use std::collections::HashMap;
use std::io::{self, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};

use slp_driver::ServeSummary;

use crate::handler::{lock_unpoisoned, wait_unpoisoned, Handler};
use crate::line::{read_line_capped, LineRead};
use crate::protocol::{Envelope, ErrorCode};

/// TCP adapter knobs. All fields are public; start from
/// `..Default::default()`.
#[derive(Debug, Clone, Copy)]
pub struct TcpOptions {
    /// Worker threads driving connection sessions.
    pub workers: usize,
    /// Accepted-but-unclaimed connection queue depth; past it new
    /// connections are answered with one `S120` line and dropped.
    pub backlog: usize,
    /// Per-connection pipelined request queue depth.
    pub queue_depth: usize,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions {
            workers: 4,
            backlog: 64,
            queue_depth: 32,
        }
    }
}

struct Shared {
    handler: Arc<Handler>,
    stop: AtomicBool,
    /// Signalled when some connection receives a `shutdown` request.
    done: (Mutex<bool>, Condvar),
    /// Read-half handles of live connections, closed on drain.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    queue_depth: usize,
}

impl Shared {
    fn signal_done(&self) {
        let (flag, cv) = &self.done;
        *lock_unpoisoned(flag) = true;
        cv.notify_all();
    }
}

/// A running TCP server; join it with [`wait`](TcpServer::wait) or end
/// it with [`shutdown`](TcpServer::shutdown).
pub struct TcpServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for TcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpServer")
            .field("local_addr", &self.local_addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl TcpServer {
    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared handler (live counters, metrics, drain control).
    pub fn handler(&self) -> &Arc<Handler> {
        &self.shared.handler
    }

    /// Blocks until some connection sends a `shutdown` request, then
    /// drains and returns the final summary.
    pub fn wait(self) -> ServeSummary {
        {
            let (flag, cv) = &self.shared.done;
            let mut done = lock_unpoisoned(flag);
            while !*done {
                done = wait_unpoisoned(cv, done);
            }
        }
        self.finish()
    }

    /// Initiates a graceful drain from the owning thread and returns
    /// the final summary once every in-flight request is answered.
    pub fn shutdown(self) -> ServeSummary {
        self.shared.signal_done();
        self.finish()
    }

    fn finish(self) -> ServeSummary {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.handler.begin_drain();
        // Wake the blocking accept() so the thread observes `stop`;
        // joining it drops the connection sender, which lets idle
        // workers exit.
        let _ = TcpStream::connect(self.local_addr);
        let _ = self.accept.join();
        for (_, conn) in lock_unpoisoned(&self.shared.conns).drain() {
            let _ = conn.shutdown(Shutdown::Read);
        }
        for worker in self.workers {
            let _ = worker.join();
        }
        self.shared.handler.summary()
    }
}

/// Binds `addr` and serves the line protocol (plus `GET /metrics`)
/// through `handler` until shut down.
pub fn serve_tcp(
    addr: impl ToSocketAddrs,
    handler: Arc<Handler>,
    options: TcpOptions,
) -> io::Result<TcpServer> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        handler,
        stop: AtomicBool::new(false),
        done: (Mutex::new(false), Condvar::new()),
        conns: Mutex::new(HashMap::new()),
        next_conn: AtomicU64::new(0),
        queue_depth: options.queue_depth.max(1),
    });

    let (conn_tx, conn_rx) = sync_channel::<TcpStream>(options.backlog.max(1));
    let conn_rx = Arc::new(Mutex::new(conn_rx));

    let accept = thread::Builder::new()
        .name("slp-serve-accept".into())
        .spawn({
            let shared = Arc::clone(&shared);
            move || {
                for conn in listener.incoming() {
                    if shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    match conn_tx.try_send(stream) {
                        Ok(()) => {}
                        Err(TrySendError::Full(stream)) => {
                            shared.handler.note_connection_rejected();
                            let line = Envelope::legacy()
                                .error(ErrorCode::Overloaded, "connection queue full; retry later")
                                .to_compact();
                            let _ = writeln!(&stream, "{line}");
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
            }
        })?;

    let mut workers = Vec::with_capacity(options.workers.max(1));
    for i in 0..options.workers.max(1) {
        let shared = Arc::clone(&shared);
        let conn_rx = Arc::clone(&conn_rx);
        workers.push(
            thread::Builder::new()
                .name(format!("slp-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared, &conn_rx))?,
        );
    }

    Ok(TcpServer {
        local_addr,
        shared,
        accept,
        workers,
    })
}

fn worker_loop(shared: &Arc<Shared>, conn_rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        // Take the lock only to receive — connections are handled with
        // the pool free to claim the next one.
        let stream = match conn_rx.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        match stream {
            Ok(stream) => {
                let _ = handle_connection(shared, stream);
            }
            Err(_) => return, // sender gone: server is finishing
        }
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) -> io::Result<()> {
    // Responses are single small lines: never let Nagle hold one back
    // against a delayed ACK.
    stream.set_nodelay(true)?;
    let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    lock_unpoisoned(&shared.conns).insert(conn_id, stream.try_clone()?);
    let result = drive_connection(shared, &stream);
    lock_unpoisoned(&shared.conns).remove(&conn_id);
    result
}

fn drive_connection(shared: &Arc<Shared>, stream: &TcpStream) -> io::Result<()> {
    let handler = &shared.handler;
    let cap = handler.max_line_bytes();
    let mut reader = BufReader::new(stream.try_clone()?);
    match read_line_capped(&mut reader, cap)? {
        LineRead::Eof => return Ok(()),
        LineRead::TooLong { .. } => {
            write_response(stream, &handler.reject_oversized_line().json)?;
        }
        LineRead::Line(first) => {
            if first.starts_with("GET ") {
                return write_metrics_http(stream, handler);
            }
            if respond(stream, handler, &first)? {
                shared.signal_done();
                return Ok(());
            }
        }
    }

    // Pipelining: a reader thread fills a bounded line queue; once the
    // queue is full it stops reading and TCP backpressure takes over.
    // Oversized lines are discarded by the reader in constant memory
    // and forwarded as a marker so the session answers `S103` in order.
    let (line_tx, line_rx) = sync_channel::<LineRead>(shared.queue_depth);
    let reader_thread = thread::Builder::new()
        .name("slp-serve-conn-reader".into())
        .spawn(move || loop {
            match read_line_capped(&mut reader, cap) {
                Ok(LineRead::Eof) | Err(_) => break,
                Ok(read) => {
                    if line_tx.send(read).is_err() {
                        break;
                    }
                }
            }
        })?;

    let mut result = Ok(());
    let mut session_shutdown = false;
    while let Ok(read) = line_rx.recv() {
        let outcome = match read {
            LineRead::TooLong { .. } => {
                write_response(stream, &handler.reject_oversized_line().json).map(|()| false)
            }
            LineRead::Line(line) => respond(stream, handler, &line),
            LineRead::Eof => unreachable!("reader thread never forwards EOF"),
        };
        match outcome {
            Ok(true) => {
                session_shutdown = true;
                break;
            }
            Ok(false) => {}
            Err(e) => {
                result = Err(e);
                break;
            }
        }
    }
    // Dropping the queue unblocks (and so retires) the reader thread.
    drop(line_rx);
    let _ = stream.shutdown(Shutdown::Read);
    let _ = reader_thread.join();
    if session_shutdown {
        shared.signal_done();
    }
    result
}

/// Handles one protocol line; `Ok(true)` means the session was asked
/// to shut down. Blank lines get no response.
fn respond(stream: &TcpStream, handler: &Handler, line: &str) -> io::Result<bool> {
    if line.trim().is_empty() {
        return Ok(false);
    }
    let response = handler.handle_line_guarded(line);
    write_response(stream, &response.json)?;
    Ok(response.shutdown)
}

/// Writes one response line and flushes it.
fn write_response(mut stream: &TcpStream, json: &slp_driver::json::Json) -> io::Result<()> {
    writeln!(stream, "{}", json.to_compact())?;
    stream.flush()
}

fn write_metrics_http(mut stream: &TcpStream, handler: &Handler) -> io::Result<()> {
    let body = handler.metrics_text();
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}
