//! Deterministic load generation against a running TCP server.
//!
//! The generator opens `connections` concurrent TCP sessions and
//! drives a seeded mix of request classes through each:
//!
//! * **warm** — one of a small fixed set of kernels, so after the first
//!   round every request is a cache hit (or coalesces onto an in-flight
//!   compile);
//! * **cold** — a kernel whose source is unique to the (seed,
//!   connection, sequence) triple, so it always misses the cache;
//! * **malformed** — an unparseable line or an unknown v1 command,
//!   expecting an `S100`/`S101` rejection;
//! * **over-quota** — a well-formed compile under a designated tenant
//!   the server meters tightly, expecting success or `S121`.
//!
//! Everything derives from [`LoadConfig::seed`] via xorshift, so two
//! runs with one seed issue byte-identical request streams — the
//! `serve-load` bench and the CI smoke job rely on that for
//! reproducible numbers.
//!
//! Every response is validated (parses, echoes the request `id`,
//! carries an expected code for its class); violations count into
//! [`LoadReport::protocol_errors`], which a healthy server keeps at 0.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Instant;

use slp_driver::json::Json;

/// Relative weights of the request classes (all zero is rejected by
/// [`run`]).
#[derive(Debug, Clone, Copy)]
pub struct LoadMix {
    /// Repeated fixed kernels (cache hits after warm-up).
    pub warm: u32,
    /// Unique-source kernels (always compile).
    pub cold: u32,
    /// Unparseable or unknown-command lines.
    pub malformed: u32,
    /// Compiles under [`LoadConfig::quota_tenant`].
    pub over_quota: u32,
}

impl Default for LoadMix {
    fn default() -> Self {
        LoadMix {
            warm: 6,
            cold: 2,
            malformed: 1,
            over_quota: 1,
        }
    }
}

/// One load-generation run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent TCP connections.
    pub connections: usize,
    /// Requests issued per connection.
    pub requests_per_connection: usize,
    /// Seed for the deterministic request stream.
    pub seed: u64,
    /// Request class mix.
    pub mix: LoadMix,
    /// Tenant name the over-quota class sends under (the server is
    /// expected to meter it tightly).
    pub quota_tenant: String,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            connections: 8,
            requests_per_connection: 50,
            seed: 0x5eed_51b0,
            mix: LoadMix::default(),
            quota_tenant: "hog".to_string(),
        }
    }
}

/// What one run observed.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests written.
    pub sent: u64,
    /// `ok:true` responses.
    pub ok: u64,
    /// `ok:false` responses whose code matched the request class
    /// (e.g. `S121` for over-quota, `S100`/`S101` for malformed).
    pub expected_errors: u64,
    /// Responses that violated the protocol: unparseable, wrong `id`
    /// echo, or an error code the request class does not explain.
    pub protocol_errors: u64,
    /// Per-request wall latency, nanoseconds, unsorted.
    pub latencies_nanos: Vec<u64>,
    /// Wall time of the whole run.
    pub wall_nanos: u64,
}

impl LoadReport {
    /// Requests per second over the whole run.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.sent as f64 / (self.wall_nanos as f64 / 1e9)
    }

    /// The `p`-th latency percentile in nanoseconds (nearest-rank;
    /// `p` in 0..=100). Zero when nothing was measured.
    pub fn percentile_nanos(&self, p: f64) -> u64 {
        if self.latencies_nanos.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies_nanos.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    fn absorb(&mut self, other: LoadReport) {
        self.sent += other.sent;
        self.ok += other.ok;
        self.expected_errors += other.expected_errors;
        self.protocol_errors += other.protocol_errors;
        self.latencies_nanos.extend(other.latencies_nanos);
    }
}

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn pick(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Class {
    Warm,
    Cold,
    Malformed,
    OverQuota,
}

fn pick_class(rng: &mut Rng, mix: &LoadMix) -> Class {
    let total = u64::from(mix.warm + mix.cold + mix.malformed + mix.over_quota);
    let mut roll = rng.pick(total);
    for (weight, class) in [
        (u64::from(mix.warm), Class::Warm),
        (u64::from(mix.cold), Class::Cold),
        (u64::from(mix.malformed), Class::Malformed),
        (u64::from(mix.over_quota), Class::OverQuota),
    ] {
        if roll < weight {
            return class;
        }
        roll -= weight;
    }
    Class::Warm
}

/// The shared warm-set kernel sources (also used by the bench's
/// cold/warm phases).
pub fn warm_source(slot: u64) -> String {
    format!(
        "kernel warm{slot} {{ array A: f64[64]; array B: f64[64]; \
         for i in 0..32 {{ A[i] = A[i] + B[i] * {slot}.0; }} }}"
    )
}

/// A kernel source unique to `tag` — guaranteed cold for a fresh
/// cache (the tag is part of the kernel name, so the fingerprint of
/// the source text is unique even when the constant collides). A
/// deliberately non-trivial kernel: cold requests should cost what a
/// real compile costs, which is what the cache tier is measured
/// against.
pub fn cold_source(tag: u64) -> String {
    let k = tag % 1000;
    format!(
        "kernel cold{tag} {{ \
         array A: f64[64]; array B: f64[64]; array C: f64[64]; array D: f64[64]; \
         for i in 0..64 {{ \
         A[i] = A[i] + B[i] * {k}.0; \
         B[i] = B[i] + C[i] * 2.0; \
         C[i] = C[i] + D[i] * 3.0; \
         D[i] = D[i] + A[i] * 4.0; \
         }} }}"
    )
}

fn compile_line(id: u64, tenant: &str, name: &str, source: &str) -> String {
    Json::obj(vec![
        ("v", Json::num(1u64)),
        ("id", Json::num(id)),
        ("tenant", Json::str(tenant)),
        ("cmd", Json::str("compile")),
        ("name", Json::str(name)),
        ("source", Json::str(source)),
    ])
    .to_compact()
}

struct Planned {
    line: String,
    class: Class,
    id: Option<u64>,
}

fn plan_request(rng: &mut Rng, config: &LoadConfig, conn: usize, seq: usize) -> Planned {
    let class = pick_class(rng, &config.mix);
    let id = (conn as u64) << 32 | seq as u64;
    match class {
        Class::Warm => {
            let slot = rng.pick(4);
            Planned {
                line: compile_line(id, "bench", &format!("warm{slot}"), &warm_source(slot)),
                class,
                id: Some(id),
            }
        }
        Class::Cold => {
            let tag = rng.next();
            Planned {
                line: compile_line(id, "bench", &format!("cold{tag}"), &cold_source(tag)),
                class,
                id: Some(id),
            }
        }
        Class::Malformed => {
            if rng.pick(2) == 0 {
                Planned {
                    line: "{this is not json".to_string(),
                    class,
                    id: None,
                }
            } else {
                let line = Json::obj(vec![
                    ("v", Json::num(1u64)),
                    ("id", Json::num(id)),
                    ("cmd", Json::str("frobnicate")),
                ])
                .to_compact();
                Planned {
                    line,
                    class,
                    id: Some(id),
                }
            }
        }
        Class::OverQuota => {
            let slot = rng.pick(4);
            Planned {
                line: compile_line(
                    id,
                    &config.quota_tenant,
                    &format!("warm{slot}"),
                    &warm_source(slot),
                ),
                class,
                id: Some(id),
            }
        }
    }
}

/// Checks one response line against its request; returns `(is_ok,
/// is_expected_error)` — both `false` marks a protocol error.
fn judge(planned: &Planned, response: &str) -> (bool, bool) {
    let Ok(doc) = Json::parse(response) else {
        return (false, false);
    };
    // v1 requests must have their id echoed back verbatim.
    if let Some(id) = planned.id {
        if doc.get("id").and_then(Json::u64) != Some(id) {
            return (false, false);
        }
    }
    match doc.get("ok") {
        Some(Json::Bool(true)) => (true, false),
        Some(Json::Bool(false)) => {
            let code = doc
                .get("code")
                .and_then(Json::string)
                .or_else(|| doc.get("kind").and_then(Json::string))
                .unwrap_or_default();
            let expected = match planned.class {
                Class::Malformed => code == "S100" || code == "S101" || code == "request",
                // A metered tenant may be rejected or may have tokens.
                Class::OverQuota => code == "S121",
                // Warm/cold requests are valid: any rejection except a
                // transient overload is a protocol error.
                Class::Warm | Class::Cold => code == "S120" || code == "S122",
            };
            (false, expected)
        }
        _ => (false, false),
    }
}

fn drive_connection(addr: SocketAddr, config: &LoadConfig, conn: usize) -> io::Result<LoadReport> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = &stream;
    let mut rng = Rng::new(config.seed ^ (conn as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut report = LoadReport::default();
    let mut response = String::new();
    for seq in 0..config.requests_per_connection {
        let planned = plan_request(&mut rng, config, conn, seq);
        let start = Instant::now();
        writeln!(writer, "{}", planned.line)?;
        writer.flush()?;
        response.clear();
        if reader.read_line(&mut response)? == 0 {
            report.protocol_errors += 1;
            break;
        }
        report.sent += 1;
        report
            .latencies_nanos
            .push(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        match judge(&planned, response.trim_end()) {
            (true, _) => report.ok += 1,
            (false, true) => report.expected_errors += 1,
            (false, false) => report.protocol_errors += 1,
        }
    }
    Ok(report)
}

/// Runs the configured load against `addr` and aggregates every
/// connection's observations.
pub fn run(addr: SocketAddr, config: &LoadConfig) -> io::Result<LoadReport> {
    let mix = &config.mix;
    if mix.warm + mix.cold + mix.malformed + mix.over_quota == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "load mix has zero total weight",
        ));
    }
    let start = Instant::now();
    let mut report = LoadReport::default();
    thread::scope(|scope| -> io::Result<()> {
        let mut handles = Vec::with_capacity(config.connections);
        for conn in 0..config.connections.max(1) {
            handles.push(scope.spawn(move || drive_connection(addr, config, conn)));
        }
        for handle in handles {
            match handle.join() {
                Ok(Ok(part)) => report.absorb(part),
                Ok(Err(e)) => return Err(e),
                Err(_) => {
                    return Err(io::Error::other("load connection thread panicked"));
                }
            }
        }
        Ok(())
    })?;
    report.wall_nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    Ok(report)
}
