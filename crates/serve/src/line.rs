//! Bounded line reading for the wire transports.
//!
//! Both adapters read newline-delimited requests from an untrusted
//! peer. The standard [`BufRead::lines`] iterator buffers until it
//! sees a `\n` — a client (or a port scanner) that never sends one
//! grows the buffer without bound. [`read_line_capped`] reads at most
//! `cap` bytes of payload per line; past the cap it *streams* the rest
//! of the oversized line to the bit bucket (constant memory), reports
//! [`LineRead::TooLong`], and leaves the reader positioned at the next
//! line so the session can keep serving.

use std::io::{self, BufRead, ErrorKind};

/// One bounded read: a complete line, an oversized one (already
/// discarded through its terminating newline), or end of input.
#[derive(Debug)]
pub enum LineRead {
    /// A complete line within the cap, `\n`/`\r\n` stripped.
    Line(String),
    /// The line exceeded the cap; `discarded` counts the bytes dropped
    /// (the whole line, including what was buffered before the cap
    /// tripped). The reader is positioned after the line's `\n`.
    TooLong {
        /// Total bytes of the oversized line that were thrown away.
        discarded: usize,
    },
    /// End of input (a final unterminated line within the cap is still
    /// returned as [`LineRead::Line`] first).
    Eof,
}

/// Reads the next `\n`-terminated line from `reader`, holding at most
/// `cap` bytes in memory (`cap == 0` means unlimited, the historical
/// behavior). Invalid UTF-8 is an [`ErrorKind::InvalidData`] error,
/// matching [`BufRead::lines`].
pub fn read_line_capped<R: BufRead>(reader: &mut R, cap: usize) -> io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            // EOF: flush a trailing unterminated line, if any.
            return if buf.is_empty() {
                Ok(LineRead::Eof)
            } else {
                finish_line(buf)
            };
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(newline) => {
                if cap != 0 && buf.len() + newline > cap {
                    let discarded = buf.len() + newline;
                    reader.consume(newline + 1);
                    return Ok(LineRead::TooLong { discarded });
                }
                buf.extend_from_slice(&chunk[..newline]);
                reader.consume(newline + 1);
                return finish_line(buf);
            }
            None => {
                let taken = chunk.len();
                if cap != 0 && buf.len() + taken > cap {
                    // Cap tripped mid-line: drop what we have and
                    // stream the rest of the line away.
                    let mut discarded = buf.len() + taken;
                    buf.clear();
                    reader.consume(taken);
                    discarded += discard_to_newline(reader)?;
                    return Ok(LineRead::TooLong { discarded });
                }
                buf.extend_from_slice(chunk);
                reader.consume(taken);
            }
        }
    }
}

/// Consumes input up to and including the next `\n` (or EOF) without
/// buffering it; returns the number of bytes thrown away.
fn discard_to_newline<R: BufRead>(reader: &mut R) -> io::Result<usize> {
    let mut discarded = 0;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Ok(discarded);
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(newline) => {
                discarded += newline;
                reader.consume(newline + 1);
                return Ok(discarded);
            }
            None => {
                discarded += chunk.len();
                let taken = chunk.len();
                reader.consume(taken);
            }
        }
    }
}

fn finish_line(mut buf: Vec<u8>) -> io::Result<LineRead> {
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(LineRead::Line)
        .map_err(|_| io::Error::new(ErrorKind::InvalidData, "stream did not contain valid UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn read_all(input: &str, cap: usize) -> Vec<String> {
        let mut reader = Cursor::new(input);
        let mut out = Vec::new();
        loop {
            match read_line_capped(&mut reader, cap).expect("read") {
                LineRead::Line(l) => out.push(l),
                LineRead::TooLong { discarded } => out.push(format!("<toolong {discarded}>")),
                LineRead::Eof => return out,
            }
        }
    }

    #[test]
    fn splits_lines_like_the_std_iterator() {
        assert_eq!(read_all("a\nbb\r\n\nccc", 0), ["a", "bb", "", "ccc"]);
        assert_eq!(read_all("", 0), Vec::<String>::new());
        assert_eq!(read_all("\n", 0), [""]);
    }

    #[test]
    fn cap_zero_is_unlimited() {
        let long = "x".repeat(100_000);
        assert_eq!(read_all(&format!("{long}\n"), 0), [long]);
    }

    #[test]
    fn line_exactly_at_the_cap_passes() {
        let line = "y".repeat(16);
        assert_eq!(read_all(&format!("{line}\nok"), 16), [line, "ok".into()]);
    }

    #[test]
    fn oversized_line_is_discarded_and_the_stream_resynchronizes() {
        let long = "z".repeat(50);
        let got = read_all(&format!("{long}\nafter\n"), 16);
        assert_eq!(got, ["<toolong 50>", "after"]);
    }

    #[test]
    fn oversized_unterminated_tail_still_reports() {
        // A peer that sends an endless line and hangs up mid-way.
        let got = read_all(&"q".repeat(40).to_string(), 8);
        assert_eq!(got, ["<toolong 40>"]);
    }

    #[test]
    fn cap_applies_per_line_not_per_stream() {
        let input = format!(
            "{}\n{}\n{}\n",
            "a".repeat(10),
            "b".repeat(30),
            "c".repeat(10)
        );
        let got = read_all(&input, 16);
        assert_eq!(got, ["a".repeat(10), "<toolong 30>".into(), "c".repeat(10)]);
    }

    #[test]
    fn invalid_utf8_is_an_io_error() {
        let mut reader = Cursor::new(&[0xffu8, 0xfe, b'\n'][..]);
        let err = read_line_capped(&mut reader, 0).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
    }
}
