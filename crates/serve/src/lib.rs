//! `slp-serve` — the concurrent, multi-tenant compile-serving layer.
//!
//! The crate splits serving into three pieces:
//!
//! * [`protocol`] — the versioned line-delimited JSON wire protocol:
//!   the v1 envelope (`{"v":1,"id":…,"tenant":…,"cmd":…}`), the legacy
//!   bare form it remains compatible with, and the stable `S1xx` error
//!   codes;
//! * [`handler`] — the transport-agnostic [`Handler`]: one request
//!   line in, one response line out, owning the compile cache, the
//!   in-flight deduplication table, the per-tenant token buckets, the
//!   admission gate and the serve counters;
//! * adapters — [`stdio::serve`] (line loop over any `BufRead`/`Write`
//!   pair, what `slpd` runs by default) and [`tcp::serve_tcp`] (accept
//!   thread, worker pool, bounded queues, `GET /metrics`), both thin:
//!   every semantic lives in the handler, so the two transports cannot
//!   drift apart.
//!
//! [`loadgen`] is the deterministic load generator the `loadgen`
//! binary, the `bench serve-load` harness and the CI smoke job share.
//!
//! The crate is re-exported as part of `slp::driver`, so callers write
//! `slp::driver::{serve, serve_tcp}`.

pub mod handler;
pub mod line;
pub mod loadgen;
pub mod protocol;
pub mod stdio;
pub mod tcp;

pub use handler::{Handler, QuotaConfig, Response, ServeConfig};
pub use protocol::ErrorCode;
pub use stdio::{serve, serve_handler};
pub use tcp::{serve_tcp, TcpOptions, TcpServer};
