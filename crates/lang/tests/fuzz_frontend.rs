//! Frontend robustness: the lexer/parser/lowering must never panic —
//! any input either compiles or produces a positioned `ParseError`.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup never panics the frontend.
    #[test]
    fn arbitrary_text_never_panics(src in ".{0,200}") {
        let _ = slp_lang::compile(&src);
    }

    /// Arbitrary sequences of the language's own tokens never panic.
    #[test]
    fn token_soup_never_panics(tokens in proptest::collection::vec(
        prop_oneof![
            Just("kernel"), Just("array"), Just("scalar"), Just("const"),
            Just("for"), Just("in"), Just("step"), Just("f64"), Just("f32"),
            Just("{"), Just("}"), Just("["), Just("]"), Just("("), Just(")"),
            Just(":"), Just(";"), Just(","), Just("="), Just("+"), Just("-"),
            Just("*"), Just("/"), Just(".."), Just("x"), Just("A"), Just("i"),
            Just("0"), Just("1"), Just("2.5"), Just("min"), Just("sqrt"),
        ],
        0..40,
    )) {
        let src = tokens.join(" ");
        let _ = slp_lang::compile(&src);
    }

    /// Mutating one byte of a valid kernel never panics.
    #[test]
    fn mutated_valid_kernel_never_panics(pos in 0usize..180, byte in 0u8..127) {
        let mut src = String::from(
            "kernel k { const N = 8; array A: f64[2*N]; scalar x, y: f64; \
             for i in 0..N { x = A[2*i] + A[2*i+1]; A[2*i] = x * 0.5; y = min(x, y); } }",
        );
        if pos < src.len() && src.is_char_boundary(pos) && byte.is_ascii() {
            let mut bytes = src.clone().into_bytes();
            bytes[pos] = byte;
            if let Ok(mutated) = String::from_utf8(bytes) {
                src = mutated;
            }
        }
        let _ = slp_lang::compile(&src);
    }
}

#[test]
fn errors_carry_positions_not_panics() {
    for src in [
        "",
        "kernel",
        "kernel k {",
        "kernel k { array A: f64; }",
        "kernel k { scalar a: f64; a = ; }",
        "kernel k { for i in 0..4 step -1 { } }",
        "kernel k { scalar a: f64; a = b + c * ; }",
        "kernel k { array A: f64[0]; }",
    ] {
        if let Err(e) = slp_lang::compile(src) {
            assert!(
                e.line() >= 1 || e.message().contains("duplicate"),
                "{src:?}: {e}"
            );
        }
    }
}
