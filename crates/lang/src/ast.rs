//! Abstract syntax tree of the kernel mini-language.
//!
//! Integer constant expressions (`const` declarations, array extents, loop
//! bounds) are folded during parsing, so the AST stores plain `i64` where
//! the source may have written `2*N+8`.

use slp_ir::{BinOp, CmpOp, ScalarType, UnOp};

/// A parsed kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelAst {
    /// Kernel name.
    pub name: String,
    /// Array declarations: name, element type, dimension extents.
    pub arrays: Vec<(String, ScalarType, Vec<i64>)>,
    /// Scalar declarations: name, element type.
    pub scalars: Vec<(String, ScalarType)>,
    /// Top-level items in source order.
    pub items: Vec<AstItem>,
}

/// A loop or an assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum AstItem {
    /// `for var in lower..upper [step k] { body }`
    For {
        /// Induction variable name.
        var: String,
        /// Inclusive lower bound.
        lower: i64,
        /// Exclusive upper bound.
        upper: i64,
        /// Step (1 unless written).
        step: i64,
        /// Body items.
        body: Vec<AstItem>,
    },
    /// `lhs = rhs;`
    Assign {
        /// Assignment target.
        lhs: AstLValue,
        /// Right-hand side.
        rhs: AstRhs,
        /// 1-based source line (for lowering diagnostics).
        line: u32,
    },
    /// `if a cmp b { then } [else { else }]` — removed before lowering
    /// by [`if_convert`](crate::if_convert::if_convert), which flattens
    /// both bodies into predicated `select` assignments.
    If {
        /// Branch condition.
        cond: AstCond,
        /// Items executed when the condition holds.
        then_body: Vec<AstItem>,
        /// Items executed otherwise (empty without `else`).
        else_body: Vec<AstItem>,
        /// 1-based source line (for lowering diagnostics).
        line: u32,
    },
}

/// A branch / select condition `a cmp b`.
#[derive(Debug, Clone, PartialEq)]
pub struct AstCond {
    /// The comparison operator.
    pub op: CmpOp,
    /// Left operand.
    pub a: AstTerm,
    /// Right operand.
    pub b: AstTerm,
}

/// A named location: scalar `x` or array element `A[2*i+1][j]`.
#[derive(Debug, Clone, PartialEq)]
pub struct AstLValue {
    /// Variable or array name.
    pub name: String,
    /// Subscripts; `None` for scalars.
    pub indices: Option<Vec<AstAffine>>,
}

/// An affine subscript `c0 + Σ ci * name_i`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AstAffine {
    /// `(coefficient, loop-variable name)` pairs.
    pub terms: Vec<(i64, String)>,
    /// Constant term.
    pub constant: i64,
}

/// An expression operand: a location or a literal.
#[derive(Debug, Clone, PartialEq)]
pub enum AstTerm {
    /// A scalar variable or array element.
    Loc(AstLValue),
    /// A numeric literal.
    Num(f64),
}

/// The right-hand side of an assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum AstRhs {
    /// `lhs = t`
    Copy(AstTerm),
    /// `lhs = op(t)` for `neg` / `abs` / `sqrt`
    Unary(UnOp, AstTerm),
    /// `lhs = a op b`, including `min(a, b)` / `max(a, b)` call syntax
    Binary(BinOp, AstTerm, AstTerm),
    /// `lhs = a + b * c`
    MulAdd(AstTerm, AstTerm, AstTerm),
    /// `lhs = select(a cmp b, t, f)`
    Select(AstCond, AstTerm, AstTerm),
}
