//! # slp-lang — the kernel mini-language frontend
//!
//! A small C-like language for writing the benchmark kernels the SLP
//! framework is evaluated on, playing the role of the SUIF frontend in the
//! original system. Source text is lexed ([`lex`]), parsed ([`parse`]) and
//! lowered ([`lower`]) into an [`slp_ir::Program`]; [`compile`] does all
//! three.
//!
//! # Grammar sketch
//!
//! ```text
//! kernel lbm {
//!     const N = 64;
//!     array A: f64[2*N];
//!     array B: f64[4*N+8];
//!     scalar a, b: f64;
//!     for i in 0..N {
//!         a = A[2*i];
//!         A[2*i+1] = a * B[4*i] + b;   // muladd form
//!         b = min(a, b);
//!         b = select(a < 0.0, 0.0, b); // predicated blend
//!         if b >= 1.0 {                // if-converted into selects
//!             B[4*i] = b;
//!         } else {
//!             B[4*i] = 1.0;
//!         }
//!     }
//! }
//! ```
//!
//! `if`/`else` bodies are flattened before lowering by the
//! [`if_convert`] pass, so the IR the packer sees is always a
//! straight-line block of (possibly predicated) assignments.
//!
//! # Examples
//!
//! ```
//! let program = slp_lang::compile(
//!     "kernel k { array A: f64[16]; scalar s: f64;
//!      for i in 0..16 { s = A[i] * 2.0; A[i] = s + 1.0; } }",
//! ).unwrap();
//! assert_eq!(program.name(), "k");
//! assert_eq!(program.blocks().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
mod error;
mod if_convert;
mod lexer;
mod lower;
mod parser;
mod token;

pub use error::{ParseError, Result};
pub use if_convert::if_convert;
pub use lexer::lex;
pub use lower::{compile, lower};
pub use parser::parse;
pub use token::{Spanned, Token};
