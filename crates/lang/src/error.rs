//! Frontend errors.

use std::error::Error;
use std::fmt;

/// An error produced while lexing, parsing or lowering a kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    message: String,
    line: u32,
    col: u32,
}

impl ParseError {
    /// Creates an error at the given 1-based source position.
    pub fn new(message: impl Into<String>, line: u32, col: u32) -> Self {
        ParseError {
            message: message.into(),
            line,
            col,
        }
    }

    /// The human-readable description.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// 1-based source line of the error.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// 1-based source column of the error.
    pub fn col(&self) -> u32 {
        self.col
    }
}

impl ParseError {
    /// Renders the error with the offending source line and a caret:
    ///
    /// ```text
    /// error: expected ';', found '}'
    ///   --> 3:27
    ///    |
    ///  3 |     for i in 0..8 { x = A[i] }
    ///    |                           ^
    /// ```
    ///
    /// Positions the frontend could not attribute (line 0) render without
    /// the excerpt.
    pub fn render(&self, src: &str) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "error: {}\n  --> {}:{}\n",
            self.message, self.line, self.col
        );
        if self.line >= 1 {
            if let Some(text) = src.lines().nth(self.line as usize - 1) {
                let gutter = self.line.to_string();
                let pad = " ".repeat(gutter.len());
                let _ = writeln!(out, " {pad} |");
                let _ = writeln!(out, " {gutter} | {text}");
                let caret_col = (self.col as usize).saturating_sub(1).min(text.len());
                let _ = writeln!(out, " {pad} | {}^", " ".repeat(caret_col));
            }
        }
        out
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl Error for ParseError {}

/// Result alias for frontend operations.
pub type Result<T> = std::result::Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new("unexpected token", 3, 7);
        assert_eq!(e.to_string(), "3:7: unexpected token");
        assert_eq!(e.line(), 3);
        assert_eq!(e.col(), 7);
    }

    #[test]
    fn render_points_at_the_offending_column() {
        let src = "kernel k {\n    scalar a: f64;\n    a = ;\n}";
        let e = ParseError::new("expected operand, found ';'", 3, 9);
        let rendered = e.render(src);
        assert!(rendered.contains("error: expected operand"), "{rendered}");
        assert!(rendered.contains(" 3 |     a = ;"), "{rendered}");
        let caret_line = rendered.lines().last().expect("caret line");
        assert_eq!(caret_line.find('^'), Some(5 + 8), "{rendered}");
    }

    #[test]
    fn render_survives_out_of_range_positions() {
        let e = ParseError::new("boom", 99, 1);
        let rendered = e.render("one line");
        assert!(rendered.contains("error: boom"));
        let e0 = ParseError::new("no position", 0, 0);
        assert!(e0.render("x").contains("no position"));
    }
}
