//! Recursive-descent parser for the kernel mini-language.
//!
//! ```text
//! kernel  ::= 'kernel' (ident | string) '{' decl* item* '}'
//! decl    ::= 'const' ident '=' intexpr ';'
//!           | 'array' ident ':' type ('[' intexpr ']')+ ';'
//!           | 'scalar' ident (',' ident)* ':' type ';'
//! item    ::= 'for' ident 'in' intexpr '..' intexpr '{' item* '}'
//!           | 'if' cond '{' item* '}' ('else' ('{' item* '}' | if-item))?
//!           | lvalue '=' rhs ';'
//! lvalue  ::= ident ('[' affine ']')*
//! rhs     ::= fn '(' term (',' term)? ')'      fn ∈ {neg, abs, sqrt, min, max}
//!           | 'select' '(' cond ',' term ',' term ')'
//!           | term (('+'|'-'|'*'|'/') term)?   with a + b * c parsed as muladd
//! cond    ::= term ('<'|'<='|'>'|'>='|'=='|'!=') term
//! term    ::= ('-')? number | lvalue
//! affine  ::= ('+'|'-')? aterm (('+'|'-') aterm)*
//! aterm   ::= int ('*' ident)? | ident ('*' int)?
//! intexpr ::= affine over `const` names and integers, folded to a value
//! ```

use std::collections::HashMap;

use slp_ir::{BinOp, CmpOp, UnOp};

use crate::ast::{AstAffine, AstCond, AstItem, AstLValue, AstRhs, AstTerm, KernelAst};
use crate::error::{ParseError, Result};
use crate::lexer::lex;
use crate::token::{Spanned, Token};

/// Parses a kernel source into its AST.
///
/// # Errors
///
/// Returns a [`ParseError`] with position information for lexical errors,
/// syntax errors and undefined `const` names.
///
/// # Examples
///
/// ```
/// let src = r#"
///     kernel demo {
///         const N = 8;
///         array A: f64[2*N];
///         scalar x: f64;
///         for i in 0..N {
///             x = A[2*i] + A[2*i+1];
///             A[2*i] = x * 0.5;
///         }
///     }
/// "#;
/// let ast = slp_lang::parse(src).unwrap();
/// assert_eq!(ast.name, "demo");
/// assert_eq!(ast.arrays[0].2, vec![16]);
/// ```
pub fn parse(src: &str) -> Result<KernelAst> {
    let tokens = lex(src)?;
    Parser {
        tokens,
        pos: 0,
        consts: HashMap::new(),
        depth: 0,
    }
    .kernel()
}

/// Deepest `for` nesting the parser accepts. The recursive-descent
/// parser (and every recursive pass downstream) consumes stack
/// proportional to the nesting depth; unbounded nesting on adversarial
/// input would overflow the stack, which aborts instead of raising a
/// typed error.
pub const MAX_LOOP_DEPTH: usize = 64;

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    consts: HashMap<String, i64>,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &Spanned {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Spanned {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        let s = self.peek();
        Err(ParseError::new(msg, s.line, s.col))
    }

    fn expect(&mut self, want: &Token) -> Result<Spanned> {
        if &self.peek().token == want {
            Ok(self.bump())
        } else {
            self.err(format!("expected '{want}', found '{}'", self.peek().token))
        }
    }

    fn eat(&mut self, want: &Token) -> bool {
        if &self.peek().token == want {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        match &self.peek().token {
            Token::Ident(_) => match self.bump().token {
                Token::Ident(s) => Ok(s),
                other => self.err(format!("expected identifier, found '{other}'")),
            },
            other => self.err(format!("expected identifier, found '{other}'")),
        }
    }

    fn kernel(mut self) -> Result<KernelAst> {
        self.expect(&Token::Kernel)?;
        let name = match &self.peek().token {
            Token::Ident(_) => self.ident()?,
            Token::Str(_) => match self.bump().token {
                Token::Str(s) => s,
                other => return self.err(format!("expected kernel name, found '{other}'")),
            },
            other => return self.err(format!("expected kernel name, found '{other}'")),
        };
        self.expect(&Token::LBrace)?;
        let mut arrays = Vec::new();
        let mut scalars = Vec::new();
        loop {
            match &self.peek().token {
                Token::Const => {
                    self.bump();
                    let n = self.ident()?;
                    self.expect(&Token::Eq)?;
                    let v = self.intexpr()?;
                    self.expect(&Token::Semi)?;
                    self.consts.insert(n, v);
                }
                Token::Array => {
                    self.bump();
                    let n = self.ident()?;
                    self.expect(&Token::Colon)?;
                    let ty = self.scalar_type()?;
                    let mut dims = Vec::new();
                    while self.eat(&Token::LBracket) {
                        dims.push(self.intexpr()?);
                        self.expect(&Token::RBracket)?;
                    }
                    if dims.is_empty() {
                        return self.err("array declaration needs at least one dimension");
                    }
                    self.expect(&Token::Semi)?;
                    arrays.push((n, ty, dims));
                }
                Token::Scalar => {
                    self.bump();
                    let mut names = vec![self.ident()?];
                    while self.eat(&Token::Comma) {
                        names.push(self.ident()?);
                    }
                    self.expect(&Token::Colon)?;
                    let ty = self.scalar_type()?;
                    self.expect(&Token::Semi)?;
                    for n in names {
                        scalars.push((n, ty));
                    }
                }
                _ => break,
            }
        }
        let items = self.items_until(&Token::RBrace)?;
        self.expect(&Token::RBrace)?;
        Ok(KernelAst {
            name,
            arrays,
            scalars,
            items,
        })
    }

    fn scalar_type(&mut self) -> Result<slp_ir::ScalarType> {
        match self.peek().token {
            Token::Type(t) => {
                self.bump();
                Ok(t)
            }
            _ => self.err(format!("expected a type, found '{}'", self.peek().token)),
        }
    }

    fn items_until(&mut self, end: &Token) -> Result<Vec<AstItem>> {
        let mut items = Vec::new();
        while &self.peek().token != end {
            if self.peek().token == Token::Eof {
                return self.err(format!("expected '{end}' before end of input"));
            }
            items.push(self.item()?);
        }
        Ok(items)
    }

    fn item(&mut self) -> Result<AstItem> {
        if self.eat(&Token::For) {
            if self.depth >= MAX_LOOP_DEPTH {
                return self.err(format!(
                    "loop nesting exceeds the depth limit of {MAX_LOOP_DEPTH}"
                ));
            }
            self.depth += 1;
            let var = self.ident()?;
            self.expect(&Token::In)?;
            let lower = self.intexpr()?;
            self.expect(&Token::DotDot)?;
            let upper = self.intexpr()?;
            let step = if self.eat(&Token::Step) {
                let s = self.intexpr()?;
                if s <= 0 {
                    return self.err("loop step must be positive");
                }
                s
            } else {
                1
            };
            self.expect(&Token::LBrace)?;
            let body = self.items_until(&Token::RBrace)?;
            self.expect(&Token::RBrace)?;
            self.depth -= 1;
            Ok(AstItem::For {
                var,
                lower,
                upper,
                step,
                body,
            })
        } else if self.peek().token == Token::If {
            let line = self.peek().line;
            self.bump();
            if self.depth >= MAX_LOOP_DEPTH {
                return self.err(format!(
                    "if nesting exceeds the depth limit of {MAX_LOOP_DEPTH}"
                ));
            }
            self.depth += 1;
            let cond = self.cond()?;
            self.expect(&Token::LBrace)?;
            let then_body = self.items_until(&Token::RBrace)?;
            self.expect(&Token::RBrace)?;
            let else_body = if self.eat(&Token::Else) {
                if self.peek().token == Token::If {
                    // `else if …` sugars to an else block holding one if.
                    vec![self.item()?]
                } else {
                    self.expect(&Token::LBrace)?;
                    let body = self.items_until(&Token::RBrace)?;
                    self.expect(&Token::RBrace)?;
                    body
                }
            } else {
                Vec::new()
            };
            self.depth -= 1;
            Ok(AstItem::If {
                cond,
                then_body,
                else_body,
                line,
            })
        } else {
            let line = self.peek().line;
            let lhs = self.lvalue()?;
            self.expect(&Token::Eq)?;
            let rhs = self.rhs()?;
            self.expect(&Token::Semi)?;
            Ok(AstItem::Assign { lhs, rhs, line })
        }
    }

    fn lvalue(&mut self) -> Result<AstLValue> {
        let name = self.ident()?;
        if self.peek().token == Token::LBracket {
            let mut indices = Vec::new();
            while self.eat(&Token::LBracket) {
                indices.push(self.affine()?);
                self.expect(&Token::RBracket)?;
            }
            Ok(AstLValue {
                name,
                indices: Some(indices),
            })
        } else {
            Ok(AstLValue {
                name,
                indices: None,
            })
        }
    }

    /// Parses a comparison `term cmp term`.
    fn cond(&mut self) -> Result<AstCond> {
        let a = self.term()?;
        let op = match self.peek().token {
            Token::Lt => CmpOp::Lt,
            Token::Le => CmpOp::Le,
            Token::Gt => CmpOp::Gt,
            Token::Ge => CmpOp::Ge,
            Token::EqEq => CmpOp::Eq,
            Token::Ne => CmpOp::Ne,
            _ => {
                return self.err(format!(
                    "expected a comparison operator, found '{}'",
                    self.peek().token
                ))
            }
        };
        self.bump();
        let b = self.term()?;
        Ok(AstCond { op, a, b })
    }

    fn rhs(&mut self) -> Result<AstRhs> {
        // Call syntax: fn '(' ... ')' for the named operators. `select`
        // is contextual like `min`: a keyword only when followed by '('.
        if let Token::Ident(name) = &self.peek().token {
            if name == "select"
                && self.tokens.get(self.pos + 1).map(|s| &s.token) == Some(&Token::LParen)
            {
                self.bump(); // select
                self.bump(); // '('
                let cond = self.cond()?;
                self.expect(&Token::Comma)?;
                let t = self.term()?;
                self.expect(&Token::Comma)?;
                let f = self.term()?;
                self.expect(&Token::RParen)?;
                return Ok(AstRhs::Select(cond, t, f));
            }
            let fun: Option<FnKind> = match name.as_str() {
                "neg" => Some(FnKind::Un(UnOp::Neg)),
                "abs" => Some(FnKind::Un(UnOp::Abs)),
                "sqrt" => Some(FnKind::Un(UnOp::Sqrt)),
                "min" => Some(FnKind::Bin(BinOp::Min)),
                "max" => Some(FnKind::Bin(BinOp::Max)),
                _ => None,
            };
            if let Some(kind) = fun {
                // Only treat as a call when followed by '('; `min` may be
                // an ordinary variable name otherwise.
                if self.tokens.get(self.pos + 1).map(|s| &s.token) == Some(&Token::LParen) {
                    self.bump(); // fn name
                    self.bump(); // '('
                    let a = self.term()?;
                    let out = match kind {
                        FnKind::Un(op) => AstRhs::Unary(op, a),
                        FnKind::Bin(op) => {
                            self.expect(&Token::Comma)?;
                            let b = self.term()?;
                            AstRhs::Binary(op, a, b)
                        }
                    };
                    self.expect(&Token::RParen)?;
                    return Ok(out);
                }
            }
        }
        let a = self.term()?;
        let op = match self.peek().token {
            Token::Plus => Some(BinOp::Add),
            Token::Minus => Some(BinOp::Sub),
            Token::Star => Some(BinOp::Mul),
            Token::Slash => Some(BinOp::Div),
            _ => None,
        };
        let Some(op) = op else {
            return Ok(AstRhs::Copy(a));
        };
        self.bump();
        let b = self.term()?;
        // `a + b * c` is the fused mul-add shape of the paper's examples.
        if op == BinOp::Add && self.eat(&Token::Star) {
            let c = self.term()?;
            return Ok(AstRhs::MulAdd(a, b, c));
        }
        Ok(AstRhs::Binary(op, a, b))
    }

    fn term(&mut self) -> Result<AstTerm> {
        match &self.peek().token {
            Token::Minus => {
                self.bump();
                match self.bump().token {
                    Token::Int(v) => Ok(AstTerm::Num(-(v as f64))),
                    Token::Float(v) => Ok(AstTerm::Num(-v)),
                    other => self.err(format!("expected number after '-', found '{other}'")),
                }
            }
            Token::Int(v) => {
                let v = *v;
                self.bump();
                Ok(AstTerm::Num(v as f64))
            }
            Token::Float(v) => {
                let v = *v;
                self.bump();
                Ok(AstTerm::Num(v))
            }
            Token::Ident(_) => Ok(AstTerm::Loc(self.lvalue()?)),
            other => self.err(format!("expected operand, found '{other}'")),
        }
    }

    /// Parses an affine subscript over loop variables (and `const` names,
    /// which fold into the constant term).
    fn affine(&mut self) -> Result<AstAffine> {
        let mut out = AstAffine::default();
        let mut sign = 1i64;
        if self.eat(&Token::Minus) {
            sign = -1;
        } else {
            self.eat(&Token::Plus);
        }
        loop {
            self.affine_term(sign, &mut out)?;
            if self.eat(&Token::Plus) {
                sign = 1;
            } else if self.eat(&Token::Minus) {
                sign = -1;
            } else {
                return Ok(out);
            }
        }
    }

    fn affine_term(&mut self, sign: i64, out: &mut AstAffine) -> Result<()> {
        match self.bump().token {
            Token::Int(c) => {
                if self.eat(&Token::Star) {
                    let name = self.ident()?;
                    let coeff = self.checked_mul(sign, c)?;
                    self.add_term(out, coeff, name)?;
                } else {
                    let term = self.checked_mul(sign, c)?;
                    out.constant = self.checked_add(out.constant, term)?;
                }
            }
            Token::Ident(name) => {
                if self.eat(&Token::Star) {
                    match self.bump().token {
                        Token::Int(c) => {
                            let coeff = self.checked_mul(sign, c)?;
                            self.add_term(out, coeff, name)?;
                        }
                        other => {
                            return self
                                .err(format!("expected integer coefficient, found '{other}'"))
                        }
                    }
                } else {
                    self.add_term(out, sign, name)?;
                }
            }
            other => return self.err(format!("expected subscript term, found '{other}'")),
        }
        Ok(())
    }

    fn checked_mul(&self, a: i64, b: i64) -> Result<i64> {
        a.checked_mul(b)
            .map_or_else(|| self.err("integer expression overflows i64"), Ok)
    }

    fn checked_add(&self, a: i64, b: i64) -> Result<i64> {
        a.checked_add(b)
            .map_or_else(|| self.err("integer expression overflows i64"), Ok)
    }

    fn add_term(&mut self, out: &mut AstAffine, coeff: i64, name: String) -> Result<()> {
        if let Some(&v) = self.consts.get(&name) {
            let folded = self.checked_mul(coeff, v)?;
            out.constant = self.checked_add(out.constant, folded)?;
        } else if let Some(pos) = out.terms.iter().position(|(_, n)| *n == name) {
            out.terms[pos].0 = self.checked_add(out.terms[pos].0, coeff)?;
        } else {
            out.terms.push((coeff, name));
        }
        Ok(())
    }

    /// Parses and folds an integer constant expression (ints and `const`
    /// names combined with `+`, `-`, `*`).
    fn intexpr(&mut self) -> Result<i64> {
        let a = self.affine()?;
        if let Some((_, name)) = a.terms.first() {
            return self.err(format!("'{name}' is not a declared const"));
        }
        Ok(a.constant)
    }
}

enum FnKind {
    Un(UnOp),
    Bin(BinOp),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_kernel() {
        let src = r#"
            kernel "demo" {
                const N = 4;
                const M = 2*N+1;
                array A: f64[2*N];
                array B: f32[N][M];
                scalar a, b: f64;
                a = 1.5;
                for i in 0..N {
                    b = A[2*i+1] * a;
                    A[2*i] = b + a * b;
                }
            }
        "#;
        let k = parse(src).unwrap();
        assert_eq!(k.name, "demo");
        assert_eq!(k.arrays.len(), 2);
        assert_eq!(k.arrays[0].2, vec![8]);
        assert_eq!(k.arrays[1].2, vec![4, 9]);
        assert_eq!(k.scalars.len(), 2);
        assert_eq!(k.items.len(), 2);
        match &k.items[1] {
            AstItem::For {
                var,
                lower,
                upper,
                step,
                ..
            } => {
                assert_eq!(var, "i");
                assert_eq!((*lower, *upper, *step), (0, 4, 1));
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn explicit_step() {
        let k =
            parse("kernel k { array A: f64[64]; for i in 0..32 step 4 { A[i] = 1.0; } }").unwrap();
        assert!(matches!(&k.items[0], AstItem::For { step: 4, .. }));
        assert!(parse("kernel k { for i in 0..4 step 0 { } }").is_err());
    }

    #[test]
    fn muladd_is_recognized() {
        let k = parse("kernel k { scalar a,b,c,d: f64; a = b + c * d; }").unwrap();
        match &k.items[0] {
            AstItem::Assign {
                rhs: AstRhs::MulAdd(_, _, _),
                ..
            } => {}
            other => panic!("expected muladd, got {other:?}"),
        }
    }

    #[test]
    fn call_syntax_ops() {
        let k = parse("kernel k { scalar a,b,c: f64; a = min(b, c); b = sqrt(c); }").unwrap();
        assert!(matches!(
            &k.items[0],
            AstItem::Assign {
                rhs: AstRhs::Binary(BinOp::Min, _, _),
                ..
            }
        ));
        assert!(matches!(
            &k.items[1],
            AstItem::Assign {
                rhs: AstRhs::Unary(UnOp::Sqrt, _),
                ..
            }
        ));
    }

    #[test]
    fn affine_subscripts() {
        let k =
            parse("kernel k { array A: f64[64]; scalar x: f64; for i in 0..4 { x = A[4*i-2]; } }")
                .unwrap();
        let AstItem::For { body, .. } = &k.items[0] else {
            panic!()
        };
        let AstItem::Assign {
            rhs: AstRhs::Copy(AstTerm::Loc(l)),
            ..
        } = &body[0]
        else {
            panic!()
        };
        let idx = &l.indices.as_ref().unwrap()[0];
        assert_eq!(idx.terms, vec![(4, "i".to_string())]);
        assert_eq!(idx.constant, -2);
    }

    #[test]
    fn coefficient_on_either_side() {
        let k =
            parse("kernel k { array A: f64[64]; scalar x: f64; for i in 0..4 { x = A[i*3+1]; } }")
                .unwrap();
        let AstItem::For { body, .. } = &k.items[0] else {
            panic!()
        };
        let AstItem::Assign {
            rhs: AstRhs::Copy(AstTerm::Loc(l)),
            ..
        } = &body[0]
        else {
            panic!()
        };
        let idx = &l.indices.as_ref().unwrap()[0];
        assert_eq!(idx.terms, vec![(3, "i".to_string())]);
    }

    #[test]
    fn errors_carry_position() {
        let e = parse("kernel k { array A f64[4]; }").unwrap_err();
        assert!(e.to_string().contains("expected ':'"), "{e}");
        let e2 = parse("kernel k { scalar a: f64; a = ; }").unwrap_err();
        assert!(e2.message().contains("expected operand"));
    }

    #[test]
    fn undeclared_const_in_bound() {
        let e = parse("kernel k { array A: f64[Q]; }").unwrap_err();
        assert!(e.message().contains("not a declared const"));
    }

    #[test]
    fn negative_literals() {
        let k = parse("kernel k { scalar a: f64; a = -2.5; }").unwrap();
        assert!(matches!(
            &k.items[0],
            AstItem::Assign {
                rhs: AstRhs::Copy(AstTerm::Num(v)),
                ..
            } if *v == -2.5
        ));
    }

    #[test]
    fn const_arithmetic_overflow_is_a_typed_error() {
        // Folding 2*N overflows i64: must be a ParseError, not a panic.
        let e =
            parse("kernel k { const N = 9223372036854775807; array A: f64[2*N]; }").unwrap_err();
        assert!(e.message().contains("overflows"), "{e}");
        // Accumulating constants overflows.
        let e2 = parse("kernel k { array A: f64[9223372036854775807 + 9223372036854775807]; }")
            .unwrap_err();
        assert!(e2.message().contains("overflows"), "{e2}");
        // Merged coefficients overflow: i*MAX + i*MAX.
        let e3 = parse(
            "kernel k { array A: f64[8]; scalar x: f64;
             for i in 0..4 { x = A[9223372036854775807*i + 9223372036854775807*i]; } }",
        )
        .unwrap_err();
        assert!(e3.message().contains("overflows"), "{e3}");
    }

    #[test]
    fn loop_nesting_depth_is_capped() {
        let mut src = String::from("kernel k { scalar x: f64; ");
        for d in 0..(MAX_LOOP_DEPTH + 1) {
            src.push_str(&format!("for v{d} in 0..1 {{ "));
        }
        src.push_str("x = 1.0; ");
        for _ in 0..(MAX_LOOP_DEPTH + 1) {
            src.push('}');
        }
        src.push('}');
        let e = parse(&src).unwrap_err();
        assert!(e.message().contains("depth limit"), "{e}");
        // One level under the cap still parses.
        let mut ok = String::from("kernel k { scalar x: f64; ");
        for d in 0..MAX_LOOP_DEPTH {
            ok.push_str(&format!("for v{d} in 0..1 {{ "));
        }
        ok.push_str("x = 1.0; ");
        for _ in 0..MAX_LOOP_DEPTH {
            ok.push('}');
        }
        ok.push('}');
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn if_else_parses() {
        let k = parse(
            "kernel k { array A: f64[8]; scalar x: f64;
             for i in 0..8 {
                 if A[i] < 0.0 { x = 1.0; } else { x = 2.0; }
             } }",
        )
        .unwrap();
        let AstItem::For { body, .. } = &k.items[0] else {
            panic!()
        };
        let AstItem::If {
            cond,
            then_body,
            else_body,
            ..
        } = &body[0]
        else {
            panic!("expected if, got {:?}", body[0])
        };
        assert_eq!(cond.op, CmpOp::Lt);
        assert_eq!(then_body.len(), 1);
        assert_eq!(else_body.len(), 1);
    }

    #[test]
    fn else_if_chains() {
        let k = parse(
            "kernel k { scalar x, y: f64;
             if x < 0.0 { y = 0.0; } else if x > 1.0 { y = 1.0; } else { y = x; } }",
        )
        .unwrap();
        let AstItem::If { else_body, .. } = &k.items[0] else {
            panic!()
        };
        assert!(matches!(&else_body[0], AstItem::If { .. }));
    }

    #[test]
    fn select_call_parses() {
        let k = parse("kernel k { scalar a,b,c: f64; a = select(b >= 0.0, b, c); }").unwrap();
        match &k.items[0] {
            AstItem::Assign {
                rhs: AstRhs::Select(cond, _, _),
                ..
            } => assert_eq!(cond.op, CmpOp::Ge),
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn select_as_variable_name_still_works() {
        let k = parse("kernel k { scalar select, a: f64; a = select; select = a; }").unwrap();
        assert!(matches!(
            &k.items[0],
            AstItem::Assign {
                rhs: AstRhs::Copy(AstTerm::Loc(l)),
                ..
            } if l.name == "select"
        ));
    }

    #[test]
    fn branchy_negative_fixtures() {
        // A condition needs a comparison.
        let e = parse("kernel k { scalar x: f64; if x { x = 1.0; } }").unwrap_err();
        assert!(e.message().contains("comparison"), "{e}");
        // select with a bare term instead of a condition.
        let e = parse("kernel k { scalar x: f64; x = select(x, 1.0, 2.0); }").unwrap_err();
        assert!(e.message().contains("comparison"), "{e}");
        // select is ternary.
        let e = parse("kernel k { scalar x: f64; x = select(x < 0.0, 1.0); }").unwrap_err();
        assert!(e.message().contains("expected ','"), "{e}");
        // else without a preceding if is not an item.
        let e = parse("kernel k { scalar x: f64; else { x = 1.0; } }").unwrap_err();
        assert!(e.message().contains("expected"), "{e}");
        // A missing brace after the condition.
        let e = parse("kernel k { scalar x: f64; if x < 0.0 x = 1.0; }").unwrap_err();
        assert!(e.message().contains("expected '{'"), "{e}");
        // Keyword-prefixed names are ordinary identifiers.
        let k = parse("kernel k { scalar iffy, selector: f64; iffy = selector; }").unwrap();
        assert!(matches!(
            &k.items[0],
            AstItem::Assign {
                rhs: AstRhs::Copy(AstTerm::Loc(l)),
                ..
            } if l.name == "selector"
        ));
        // Comparisons are not expressions outside if/select.
        let e = parse("kernel k { scalar x: f64; x = x < 1.0; }").unwrap_err();
        assert!(e.message().contains("expected ';'"), "{e}");
    }

    #[test]
    fn if_nesting_counts_against_depth_limit() {
        let mut src = String::from("kernel k { scalar x: f64; ");
        for _ in 0..(MAX_LOOP_DEPTH + 1) {
            src.push_str("if x < 1.0 { ");
        }
        src.push_str("x = 1.0; ");
        for _ in 0..(MAX_LOOP_DEPTH + 1) {
            src.push('}');
        }
        src.push('}');
        let e = parse(&src).unwrap_err();
        assert!(e.message().contains("depth limit"), "{e}");
    }

    #[test]
    fn min_as_variable_name_still_works() {
        let k = parse("kernel k { scalar min, a: f64; a = min; }").unwrap();
        assert!(matches!(
            &k.items[0],
            AstItem::Assign {
                rhs: AstRhs::Copy(AstTerm::Loc(l)),
                ..
            } if l.name == "min"
        ));
    }
}
