//! If-conversion: flattening branchy bodies into predicated
//! straight-line code.
//!
//! The SLP pipeline packs statements inside straight-line basic blocks,
//! so a branch in a loop body would end vectorization at the branch.
//! This pass rewrites every [`AstItem::If`] into unconditional
//! assignments guarded by `select`:
//!
//! ```text
//! if c { x = e; }        =>   t = e;                  (t fresh)
//!                             x = select(c, t, x);
//! if c { } else { x = e; } => t = e;
//!                             x = select(c, x, t);
//! ```
//!
//! A right-hand side that is a single term needs no temporary and merges
//! directly: `x = select(c, e, x)`. Both arms of an `if`/`else` are
//! flattened against the *same* condition, so the merged block stays a
//! single basic block the packer can treat exactly like hand-written
//! selects.
//!
//! Soundness notes:
//!
//! * The mini-language has no traps — division by zero and the square
//!   root of a negative produce IEEE non-finite values — so hoisting a
//!   guarded computation to unconditional execution never changes the
//!   observable result of the statements that *are* selected.
//! * Each guarded assignment merges immediately (`x = select(c, t, x)`),
//!   so later statements in the same branch read the merged value, which
//!   under the branch condition equals the branch value. Off-branch, the
//!   select writes back the old value and the statement is a no-op.
//! * If a branch body writes a location the condition reads, re-evaluating
//!   the condition at later guarded statements would see the new value;
//!   the pass hoists such condition operands into fresh temporaries
//!   evaluated once, before the first guarded statement.

use std::collections::HashSet;

use slp_ir::ScalarType;

use crate::ast::{AstCond, AstItem, AstLValue, AstRhs, AstTerm, KernelAst};

/// Rewrites every `if`/`else` in `ast` into straight-line predicated
/// assignments. Programs without branches are returned unchanged
/// (cheaply: the item tree is only rebuilt along branchy paths).
///
/// Fresh temporaries are declared as scalars typed like the assignment
/// target they guard; locations the pass cannot type (undeclared names
/// surface as lowering errors later) default to `f64`.
///
/// # Examples
///
/// ```
/// let mut ast = slp_lang::parse(
///     "kernel k { array A: f64[8]; for i in 0..8 {
///          if A[i] < 0.0 { A[i] = 0.0; }
///      } }",
/// )
/// .unwrap();
/// slp_lang::if_convert(&mut ast);
/// let p = slp_lang::lower(&ast).unwrap();
/// assert!(p.to_source().contains("select("));
/// ```
pub fn if_convert(ast: &mut KernelAst) {
    if !items_have_if(&ast.items) {
        return;
    }
    let mut cx = Converter {
        taken: ast
            .arrays
            .iter()
            .map(|(n, _, _)| n.clone())
            .chain(ast.scalars.iter().map(|(n, _)| n.clone()))
            .collect(),
        fresh: Vec::new(),
        next: 0,
        ast,
    };
    let items = std::mem::take(&mut cx.ast.items);
    let converted = cx.convert_items(items);
    cx.ast.items = converted;
    let fresh = std::mem::take(&mut cx.fresh);
    ast.scalars.extend(fresh);
}

/// Whether `ast` contains any `if` item (and hence needs conversion).
pub(crate) fn has_branches(ast: &KernelAst) -> bool {
    items_have_if(&ast.items)
}

fn items_have_if(items: &[AstItem]) -> bool {
    items.iter().any(|it| match it {
        AstItem::If { .. } => true,
        AstItem::For { body, .. } => items_have_if(body),
        AstItem::Assign { .. } => false,
    })
}

struct Converter<'a> {
    ast: &'a mut KernelAst,
    /// Every name already in use (declarations plus generated temps).
    taken: HashSet<String>,
    /// Temporaries minted so far, appended to the scalar declarations.
    fresh: Vec<(String, ScalarType)>,
    next: usize,
}

impl Converter<'_> {
    fn convert_items(&mut self, items: Vec<AstItem>) -> Vec<AstItem> {
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            match item {
                AstItem::Assign { .. } => out.push(item),
                AstItem::For {
                    var,
                    lower,
                    upper,
                    step,
                    body,
                } => {
                    let body = self.convert_items(body);
                    out.push(AstItem::For {
                        var,
                        lower,
                        upper,
                        step,
                        body,
                    });
                }
                AstItem::If {
                    cond,
                    then_body,
                    else_body,
                    line,
                } => {
                    // Inner branches first: afterwards both bodies are
                    // plain assignment lists.
                    let then_body = self.convert_items(then_body);
                    let else_body = self.convert_items(else_body);
                    self.flatten(cond, then_body, else_body, line, &mut out);
                }
            }
        }
        out
    }

    /// Emits the predicated form of one (already flattened) `if`.
    fn flatten(
        &mut self,
        cond: AstCond,
        then_body: Vec<AstItem>,
        else_body: Vec<AstItem>,
        line: u32,
        out: &mut Vec<AstItem>,
    ) {
        // Hoist condition operands the bodies may overwrite, so every
        // guard evaluates the condition as of branch entry.
        let cond = self.stabilize_cond(cond, &then_body, &else_body, line, out);
        for (body, is_then) in [(then_body, true), (else_body, false)] {
            for item in body {
                let AstItem::Assign { lhs, rhs, line } = item else {
                    unreachable!("bodies are flattened before guarding")
                };
                self.guard(lhs, rhs, &cond, is_then, line, out);
            }
        }
    }

    /// Rewrites `lhs = rhs` under `cond` into select-merged form.
    fn guard(
        &mut self,
        lhs: AstLValue,
        rhs: AstRhs,
        cond: &AstCond,
        is_then: bool,
        line: u32,
        out: &mut Vec<AstItem>,
    ) {
        // A temp of the pass feeding a later select needs no guard: it
        // is dead unless its consumer selects it.
        if lhs.indices.is_none() && self.fresh.iter().any(|(n, _)| *n == lhs.name) {
            out.push(AstItem::Assign { lhs, rhs, line });
            return;
        }
        let value = match rhs {
            AstRhs::Copy(t) => t,
            complex => {
                let tmp = self.fresh_temp(&lhs);
                out.push(AstItem::Assign {
                    lhs: AstLValue {
                        name: tmp.clone(),
                        indices: None,
                    },
                    rhs: complex,
                    line,
                });
                AstTerm::Loc(AstLValue {
                    name: tmp,
                    indices: None,
                })
            }
        };
        let old = AstTerm::Loc(lhs.clone());
        let (t, f) = if is_then { (value, old) } else { (old, value) };
        out.push(AstItem::Assign {
            lhs,
            rhs: AstRhs::Select(cond.clone(), t, f),
            line,
        });
    }

    /// Hoists condition operands that a guarded statement may overwrite
    /// into fresh temporaries evaluated before the guards. Only writes
    /// *before the last* guarded statement matter: a guard at position
    /// `i` re-reads the condition, so it sees writes from positions
    /// `< i`; the final statement's write has no guard after it. This
    /// keeps the common single-statement branch free of extra copies.
    fn stabilize_cond(
        &mut self,
        cond: AstCond,
        then_body: &[AstItem],
        else_body: &[AstItem],
        line: u32,
        out: &mut Vec<AstItem>,
    ) -> AstCond {
        let guarded: Vec<&AstItem> = then_body.iter().chain(else_body).collect();
        let written: Vec<&AstLValue> = guarded[..guarded.len().saturating_sub(1)]
            .iter()
            .filter_map(|it| match it {
                AstItem::Assign { lhs, .. } => Some(lhs),
                _ => None,
            })
            .collect();
        let AstCond { op, a, b } = cond;
        let a = self.hoist_term(a, &written, line, out);
        let b = self.hoist_term(b, &written, line, out);
        AstCond { op, a, b }
    }

    fn hoist_term(
        &mut self,
        term: AstTerm,
        written: &[&AstLValue],
        line: u32,
        out: &mut Vec<AstItem>,
    ) -> AstTerm {
        let AstTerm::Loc(loc) = &term else {
            return term; // literals are trivially stable
        };
        // Scalars clash on the name; array elements conservatively on
        // the array (subscripts are loop-invariant within an iteration,
        // but distinct elements of one array may still alias).
        let clobbered = written.iter().any(|w| w.name == loc.name);
        if !clobbered {
            return term;
        }
        let tmp = self.fresh_temp(loc);
        out.push(AstItem::Assign {
            lhs: AstLValue {
                name: tmp.clone(),
                indices: None,
            },
            rhs: AstRhs::Copy(term),
            line,
        });
        AstTerm::Loc(AstLValue {
            name: tmp,
            indices: None,
        })
    }

    /// Mints a scalar temporary typed like `like` (its declared scalar
    /// type, or the element type of the array it names).
    fn fresh_temp(&mut self, like: &AstLValue) -> String {
        let ty = self
            .ast
            .scalars
            .iter()
            .find(|(n, _)| *n == like.name)
            .map(|(_, t)| *t)
            .or_else(|| {
                self.ast
                    .arrays
                    .iter()
                    .find(|(n, _, _)| *n == like.name)
                    .map(|(_, t, _)| *t)
            })
            .unwrap_or(ScalarType::F64);
        loop {
            let name = format!("t.if{}", self.next);
            self.next += 1;
            if self.taken.insert(name.clone()) {
                self.fresh.push((name.clone(), ty));
                return name;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn convert(src: &str) -> KernelAst {
        let mut ast = parse(src).unwrap();
        if_convert(&mut ast);
        ast
    }

    fn assigns(items: &[AstItem]) -> Vec<&AstItem> {
        items
            .iter()
            .flat_map(|it| match it {
                AstItem::For { body, .. } => assigns(body),
                other => vec![other],
            })
            .collect()
    }

    #[test]
    fn branchless_programs_pass_through() {
        let src = "kernel k { scalar x: f64; x = 1.0; }";
        let before = parse(src).unwrap();
        let after = convert(src);
        assert_eq!(before, after);
    }

    #[test]
    fn then_only_if_becomes_one_select() {
        let ast = convert(
            "kernel k { array A: f64[8]; for i in 0..8 {
                 if A[i] < 0.0 { A[i] = 0.0; }
             } }",
        );
        let flat = assigns(&ast.items);
        assert_eq!(flat.len(), 1, "{flat:?}");
        let AstItem::Assign {
            rhs: AstRhs::Select(cond, t, f),
            ..
        } = flat[0]
        else {
            panic!("expected select, got {:?}", flat[0]);
        };
        assert_eq!(cond.op, slp_ir::CmpOp::Lt);
        assert!(matches!(t, AstTerm::Num(v) if *v == 0.0));
        assert!(matches!(f, AstTerm::Loc(l) if l.name == "A"), "{f:?}");
    }

    #[test]
    fn else_branch_swaps_select_arms() {
        let ast = convert(
            "kernel k { scalar x, y: f64;
             if x > 0.0 { y = 1.0; } else { y = 2.0; } }",
        );
        let flat = assigns(&ast.items);
        // then-guard merges into y, else-guard merges on top.
        assert_eq!(flat.len(), 2);
        let AstItem::Assign {
            rhs: AstRhs::Select(_, t, f),
            ..
        } = flat[1]
        else {
            panic!()
        };
        assert!(matches!(t, AstTerm::Loc(l) if l.name == "y"));
        assert!(matches!(f, AstTerm::Num(v) if *v == 2.0));
    }

    #[test]
    fn complex_rhs_gets_a_typed_temp() {
        let ast = convert(
            "kernel k { scalar x: f32; scalar g: f64;
             if g < 0.5 { x = x + 1.0; } }",
        );
        // t.if0 = x + 1.0; x = select(g < 0.5, t.if0, x)
        assert!(ast
            .scalars
            .iter()
            .any(|(n, t)| n == "t.if0" && *t == ScalarType::F32));
        let flat = assigns(&ast.items);
        assert_eq!(flat.len(), 2);
        assert!(matches!(
            flat[0],
            AstItem::Assign {
                lhs,
                rhs: AstRhs::Binary(..),
                ..
            } if lhs.name == "t.if0"
        ));
    }

    #[test]
    fn condition_operand_written_by_body_is_hoisted() {
        let ast = convert(
            "kernel k { scalar x, y: f64;
             if x < 0.0 { x = 0.0; y = 1.0; } }",
        );
        let flat = assigns(&ast.items);
        // hoist: t = x; x = select(t < 0, 0, x); y = select(t < 0, 1, y)
        assert_eq!(flat.len(), 3, "{flat:?}");
        let AstItem::Assign { lhs, rhs, .. } = flat[0] else {
            panic!()
        };
        assert!(lhs.name.starts_with("t.if"), "hoist first: {flat:?}");
        assert!(matches!(rhs, AstRhs::Copy(AstTerm::Loc(l)) if l.name == "x"));
        for g in &flat[1..] {
            let AstItem::Assign {
                rhs: AstRhs::Select(cond, _, _),
                ..
            } = g
            else {
                panic!()
            };
            assert!(
                matches!(&cond.a, AstTerm::Loc(l) if l.name == lhs.name),
                "guards must use the hoisted copy"
            );
        }
    }

    #[test]
    fn nested_ifs_flatten_inside_out() {
        let ast = convert(
            "kernel k { scalar x, y: f64;
             if x < 0.0 { if y < 0.0 { x = 1.0; } } }",
        );
        let flat = assigns(&ast.items);
        assert!(
            flat.iter().all(|it| matches!(it, AstItem::Assign { .. })),
            "no ifs remain: {flat:?}"
        );
        // Inner produces x = select(y<0, 1, x); outer re-guards it via a
        // temp: t = select(y<0, 1, x); x = select(x<0, t, x).
        assert_eq!(flat.len(), 2, "{flat:?}");
    }

    #[test]
    fn temp_names_avoid_collisions() {
        let ast = convert(
            "kernel k { scalar g: f64; scalar t.if0: f64;
             if g < 0.0 { g = g + 1.0; } }",
        );
        let minted: Vec<_> = ast
            .scalars
            .iter()
            .filter(|(n, _)| n.starts_with("t.if"))
            .collect();
        assert_eq!(minted.len(), 2, "{minted:?}");
        assert!(ast.scalars.iter().any(|(n, _)| n == "t.if1"));
    }
}
