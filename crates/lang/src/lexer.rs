//! Hand-written lexer for the kernel mini-language.

use slp_ir::ScalarType;

use crate::error::{ParseError, Result};
use crate::token::{Spanned, Token};

/// Tokenizes `src`, returning the token stream terminated by
/// [`Token::Eof`].
///
/// Comments run from `//` to end of line. Whitespace separates tokens.
///
/// # Errors
///
/// Returns a [`ParseError`] on unknown characters or malformed numeric
/// literals.
pub fn lex(src: &str) -> Result<Vec<Spanned>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            src,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Result<Vec<Spanned>> {
        let _ = self.src;
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else {
                out.push(Spanned {
                    token: Token::Eof,
                    line,
                    col,
                });
                return Ok(out);
            };
            let token = match c {
                '{' => self.single(Token::LBrace),
                '}' => self.single(Token::RBrace),
                '[' => self.single(Token::LBracket),
                ']' => self.single(Token::RBracket),
                '(' => self.single(Token::LParen),
                ')' => self.single(Token::RParen),
                ':' => self.single(Token::Colon),
                ';' => self.single(Token::Semi),
                ',' => self.single(Token::Comma),
                '=' if self.peek2() == Some('=') => self.double(Token::EqEq),
                '=' => self.single(Token::Eq),
                '<' if self.peek2() == Some('=') => self.double(Token::Le),
                '<' => self.single(Token::Lt),
                '>' if self.peek2() == Some('=') => self.double(Token::Ge),
                '>' => self.single(Token::Gt),
                '!' if self.peek2() == Some('=') => self.double(Token::Ne),
                '+' => self.single(Token::Plus),
                '-' => self.single(Token::Minus),
                '*' => self.single(Token::Star),
                '/' => self.single(Token::Slash),
                '.' if self.peek2() == Some('.') => {
                    self.bump();
                    self.bump();
                    Token::DotDot
                }
                '"' => self.string(line, col)?,
                c if c.is_ascii_digit() => self.number(line, col)?,
                c if c.is_ascii_alphabetic() || c == '_' => self.ident(),
                other => {
                    return Err(ParseError::new(
                        format!("unexpected character '{other}'"),
                        line,
                        col,
                    ))
                }
            };
            out.push(Spanned { token, line, col });
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn single(&mut self, t: Token) -> Token {
        self.bump();
        t
    }

    fn double(&mut self, t: Token) -> Token {
        self.bump();
        self.bump();
        t
    }

    fn string(&mut self, line: u32, col: u32) -> Result<Token> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(Token::Str(s)),
                Some(c) => s.push(c),
                None => return Err(ParseError::new("unterminated string", line, col)),
            }
        }
    }

    fn number(&mut self, line: u32, col: u32) -> Result<Token> {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // A '.' followed by a digit makes it a float; '..' is a range.
        if self.peek() == Some('.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            s.push('.');
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() {
                    s.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            s.parse::<f64>()
                .map(Token::Float)
                .map_err(|_| ParseError::new(format!("bad float literal '{s}'"), line, col))
        } else {
            s.parse::<i64>()
                .map(Token::Int)
                .map_err(|_| ParseError::new(format!("bad integer literal '{s}'"), line, col))
        }
    }

    fn ident(&mut self) -> Token {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                // Allow '.' in identifiers only when followed by alnum
                // (unroll-renamed scalars like `t.u1` round-trip).
                if c == '.' && !self.peek2().is_some_and(|n| n.is_ascii_alphanumeric()) {
                    break;
                }
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match s.as_str() {
            "kernel" => Token::Kernel,
            "array" => Token::Array,
            "scalar" => Token::Scalar,
            "const" => Token::Const,
            "for" => Token::For,
            "in" => Token::In,
            "step" => Token::Step,
            "if" => Token::If,
            "else" => Token::Else,
            "f32" => Token::Type(ScalarType::F32),
            "f64" => Token::Type(ScalarType::F64),
            "i8" => Token::Type(ScalarType::I8),
            "i16" => Token::Type(ScalarType::I16),
            "i32" => Token::Type(ScalarType::I32),
            "i64" => Token::Type(ScalarType::I64),
            _ => Token::Ident(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("kernel foo array f64"),
            vec![
                Token::Kernel,
                Token::Ident("foo".into()),
                Token::Array,
                Token::Type(ScalarType::F64),
                Token::Eof
            ]
        );
    }

    #[test]
    fn numbers_ranges_and_floats() {
        assert_eq!(
            toks("0..16 2.5 3"),
            vec![
                Token::Int(0),
                Token::DotDot,
                Token::Int(16),
                Token::Float(2.5),
                Token::Int(3),
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // comment\n b"),
            vec![
                Token::Ident("a".into()),
                Token::Ident("b".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn punctuation() {
        assert_eq!(
            toks("A[i] = a * b;"),
            vec![
                Token::Ident("A".into()),
                Token::LBracket,
                Token::Ident("i".into()),
                Token::RBracket,
                Token::Eq,
                Token::Ident("a".into()),
                Token::Star,
                Token::Ident("b".into()),
                Token::Semi,
                Token::Eof
            ]
        );
    }

    #[test]
    fn string_literals() {
        assert_eq!(
            toks("\"lbm kernel\""),
            vec![Token::Str("lbm kernel".into()), Token::Eof]
        );
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn positions_are_tracked() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
    }

    #[test]
    fn unknown_char_is_an_error() {
        let e = lex("a @ b").unwrap_err();
        assert!(e.message().contains("unexpected character"));
        assert_eq!(e.col(), 3);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("a < b <= c > d >= e == f != g"),
            vec![
                Token::Ident("a".into()),
                Token::Lt,
                Token::Ident("b".into()),
                Token::Le,
                Token::Ident("c".into()),
                Token::Gt,
                Token::Ident("d".into()),
                Token::Ge,
                Token::Ident("e".into()),
                Token::EqEq,
                Token::Ident("f".into()),
                Token::Ne,
                Token::Ident("g".into()),
                Token::Eof
            ]
        );
        // '==' must not lex as two assignments.
        assert_eq!(toks("=="), vec![Token::EqEq, Token::Eof]);
        // A bare '!' is still an error.
        let e = lex("a ! b").unwrap_err();
        assert!(e.message().contains("unexpected character"));
    }

    #[test]
    fn if_else_keywords_and_prefixed_identifiers() {
        assert_eq!(
            toks("if else iffy elsewhere selector select"),
            vec![
                Token::If,
                Token::Else,
                Token::Ident("iffy".into()),
                Token::Ident("elsewhere".into()),
                // `select` is contextual (call syntax only), never a
                // keyword, so both stay identifiers.
                Token::Ident("selector".into()),
                Token::Ident("select".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn dotted_idents() {
        assert_eq!(toks("t.u1"), vec![Token::Ident("t.u1".into()), Token::Eof]);
    }

    #[test]
    fn overflowing_integer_literal_is_a_typed_error() {
        let e = lex("99999999999999999999999").unwrap_err();
        assert!(e.message().contains("bad integer literal"), "{e}");
    }

    #[test]
    fn non_ascii_bytes_are_typed_errors() {
        for src in ["λ = 1.0;", "a = \u{1F600};", "ke\u{0301}rnel k {}"] {
            let e = lex(src).unwrap_err();
            assert!(e.message().contains("unexpected character"), "{src}: {e}");
        }
        // Non-ASCII inside a string literal is fine.
        assert!(lex("\"kérnel λ\"").is_ok());
    }

    #[test]
    fn pathological_punctuation_terminates() {
        // A trailing '.' (no second '.') is an error, not a hang.
        assert!(lex("a = 1.").is_err());
        assert!(lex(".").is_err());
        // Deeply repeated trivia/comments terminate.
        let long = "// c\n".repeat(10_000);
        assert!(lex(&long).is_ok());
    }
}
