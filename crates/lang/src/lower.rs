//! Lowering from AST to the `slp-ir` program representation.

use std::collections::HashMap;

use slp_ir::{
    AccessVector, AffineExpr, ArrayId, ArrayRef, Dest, Expr, Item, Loop, LoopHeader, LoopVarId,
    Operand, Program, VarId,
};

use crate::ast::{AstAffine, AstItem, AstLValue, AstRhs, AstTerm, KernelAst};
use crate::error::{ParseError, Result};

/// Lowers a parsed kernel to an IR [`Program`].
///
/// Branchy kernels are if-converted first (see
/// [`if_convert`](crate::if_convert::if_convert)): by the time items
/// reach the lowerer every `if` has been flattened into predicated
/// `select` assignments, so the IR stays straight-line.
///
/// # Errors
///
/// Returns a [`ParseError`] for undeclared names, subscripted scalars,
/// unsubscripted arrays, wrong subscript rank and subscripts that use
/// names that are not in-scope loop variables.
///
/// # Examples
///
/// ```
/// let src = "kernel k { array A: f64[8]; scalar x: f64; for i in 0..8 { x = A[i]; } }";
/// let program = slp_lang::lower(&slp_lang::parse(src).unwrap()).unwrap();
/// assert_eq!(program.stmt_count(), 1);
/// assert_eq!(program.arrays()[0].dims, vec![8]);
/// ```
pub fn lower(ast: &KernelAst) -> Result<Program> {
    if crate::if_convert::has_branches(ast) {
        let mut flat = ast.clone();
        crate::if_convert::if_convert(&mut flat);
        return lower_flat(&flat);
    }
    lower_flat(ast)
}

fn lower_flat(ast: &KernelAst) -> Result<Program> {
    let mut p = Program::new(ast.name.clone());
    let mut arrays: HashMap<&str, ArrayId> = HashMap::new();
    let mut scalars: HashMap<&str, VarId> = HashMap::new();
    for (name, ty, dims) in &ast.arrays {
        if arrays.contains_key(name.as_str()) || scalars.contains_key(name.as_str()) {
            return Err(dup(name));
        }
        arrays.insert(name, p.add_array(name.clone(), *ty, dims.clone(), true));
    }
    for (name, ty) in &ast.scalars {
        if arrays.contains_key(name.as_str()) || scalars.contains_key(name.as_str()) {
            return Err(dup(name));
        }
        scalars.insert(name, p.add_scalar(name.clone(), *ty));
    }
    let mut cx = Lowerer {
        arrays,
        scalars,
        loop_stack: Vec::new(),
        program: &mut p,
    };
    let items = cx.items(&ast.items)?;
    for item in items {
        p.push_item(item);
    }
    Ok(p)
}

/// Parses and lowers in one step: the usual entry point.
///
/// # Errors
///
/// Propagates lexing, parsing and lowering errors.
///
/// # Examples
///
/// ```
/// let p = slp_lang::compile("kernel k { scalar a: f64; a = 2.0; }").unwrap();
/// assert_eq!(p.name(), "k");
/// ```
pub fn compile(src: &str) -> Result<Program> {
    lower(&crate::parser::parse(src)?)
}

fn dup(name: &str) -> ParseError {
    ParseError::new(format!("duplicate declaration of '{name}'"), 0, 0)
}

struct Lowerer<'a> {
    arrays: HashMap<&'a str, ArrayId>,
    scalars: HashMap<&'a str, VarId>,
    loop_stack: Vec<(&'a str, LoopVarId)>,
    program: &'a mut Program,
}

impl<'a> Lowerer<'a> {
    fn items(&mut self, items: &'a [AstItem]) -> Result<Vec<Item>> {
        items.iter().map(|it| self.item(it)).collect()
    }

    fn item(&mut self, item: &'a AstItem) -> Result<Item> {
        match item {
            AstItem::For {
                var,
                lower,
                upper,
                step,
                body,
            } => {
                let id = self.program.add_loop_var(var.clone());
                self.loop_stack.push((var, id));
                let body = self.items(body)?;
                self.loop_stack.pop();
                Ok(Item::Loop(Loop {
                    header: LoopHeader {
                        var: id,
                        lower: *lower,
                        upper: *upper,
                        step: *step,
                    },
                    body,
                }))
            }
            AstItem::Assign { lhs, rhs, line } => {
                let dest = self.dest(lhs, *line)?;
                let expr = self.rhs(rhs, *line)?;
                Ok(Item::Stmt(self.program.make_stmt(dest, expr)))
            }
            AstItem::If { line, .. } => Err(ParseError::new(
                "internal error: 'if' reached lowering without if-conversion",
                *line,
                0,
            )),
        }
    }

    fn lookup_loop_var(&self, name: &str, line: u32) -> Result<LoopVarId> {
        self.loop_stack
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|&(_, id)| id)
            .ok_or_else(|| {
                ParseError::new(
                    format!("'{name}' is not an in-scope loop variable"),
                    line,
                    0,
                )
            })
    }

    fn affine(&self, a: &AstAffine, line: u32) -> Result<AffineExpr> {
        let mut terms = Vec::with_capacity(a.terms.len());
        for (coeff, name) in &a.terms {
            terms.push((self.lookup_loop_var(name, line)?, *coeff));
        }
        Ok(AffineExpr::from_terms(terms, a.constant))
    }

    fn array_ref(&self, name: &str, indices: &[AstAffine], line: u32) -> Result<ArrayRef> {
        let id = *self
            .arrays
            .get(name)
            .ok_or_else(|| ParseError::new(format!("'{name}' is not a declared array"), line, 0))?;
        let rank = self.program.array(id).dims.len();
        if indices.len() != rank {
            return Err(ParseError::new(
                format!(
                    "array '{name}' has rank {rank} but was subscripted with {} indices",
                    indices.len()
                ),
                line,
                0,
            ));
        }
        let dims = indices
            .iter()
            .map(|a| self.affine(a, line))
            .collect::<Result<Vec<_>>>()?;
        Ok(ArrayRef::new(id, AccessVector::new(dims)))
    }

    fn dest(&self, lhs: &AstLValue, line: u32) -> Result<Dest> {
        match &lhs.indices {
            Some(idx) => Ok(self.array_ref(&lhs.name, idx, line)?.into()),
            None => {
                if self.arrays.contains_key(lhs.name.as_str()) {
                    return Err(ParseError::new(
                        format!("array '{}' must be subscripted", lhs.name),
                        line,
                        0,
                    ));
                }
                let v = self.scalars.get(lhs.name.as_str()).ok_or_else(|| {
                    ParseError::new(format!("'{}' is not a declared scalar", lhs.name), line, 0)
                })?;
                Ok((*v).into())
            }
        }
    }

    fn operand(&self, t: &AstTerm, line: u32) -> Result<Operand> {
        match t {
            AstTerm::Num(v) => Ok(Operand::Const(*v)),
            AstTerm::Loc(l) => match &l.indices {
                Some(idx) => Ok(self.array_ref(&l.name, idx, line)?.into()),
                None => {
                    if self.arrays.contains_key(l.name.as_str()) {
                        return Err(ParseError::new(
                            format!("array '{}' must be subscripted", l.name),
                            line,
                            0,
                        ));
                    }
                    let v = self.scalars.get(l.name.as_str()).ok_or_else(|| {
                        ParseError::new(format!("'{}' is not declared", l.name), line, 0)
                    })?;
                    Ok((*v).into())
                }
            },
        }
    }

    fn rhs(&self, rhs: &AstRhs, line: u32) -> Result<Expr> {
        Ok(match rhs {
            AstRhs::Copy(t) => Expr::Copy(self.operand(t, line)?),
            AstRhs::Unary(op, t) => Expr::Unary(*op, self.operand(t, line)?),
            AstRhs::Binary(op, a, b) => {
                Expr::Binary(*op, self.operand(a, line)?, self.operand(b, line)?)
            }
            AstRhs::MulAdd(a, b, c) => Expr::MulAdd(
                self.operand(a, line)?,
                self.operand(b, line)?,
                self.operand(c, line)?,
            ),
            AstRhs::Select(cond, t, f) => Expr::Select(
                cond.op,
                self.operand(&cond.a, line)?,
                self.operand(&cond.b, line)?,
                self.operand(t, line)?,
                self.operand(f, line)?,
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_ir::TypeEnv;

    #[test]
    fn lowers_nested_loops() {
        let p = compile(
            "kernel k { array A: f64[4][8]; scalar x: f64;
             for i in 0..4 { for j in 0..8 { x = A[i][j]; A[i][j] = x * 2.0; } } }",
        )
        .unwrap();
        let blocks = p.blocks();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].loops.len(), 2);
        assert_eq!(blocks[0].block.len(), 2);
    }

    #[test]
    fn scalar_types_resolved() {
        let p = compile("kernel k { scalar a: f32; scalar b: f64; a = 1.0; b = 2.0; }").unwrap();
        assert_eq!(p.scalar_type(VarId::new(0)), slp_ir::ScalarType::F32);
        assert_eq!(p.scalar_type(VarId::new(1)), slp_ir::ScalarType::F64);
    }

    #[test]
    fn rejects_undeclared_names() {
        let e = compile("kernel k { scalar a: f64; a = zz; }").unwrap_err();
        assert!(e.message().contains("not declared"));
    }

    #[test]
    fn rejects_rank_mismatch() {
        let e =
            compile("kernel k { array A: f64[4][4]; scalar a: f64; for i in 0..4 { a = A[i]; } }")
                .unwrap_err();
        assert!(e.message().contains("rank"));
    }

    #[test]
    fn rejects_unsubscripted_array() {
        let e = compile("kernel k { array A: f64[4]; scalar a: f64; a = A; }").unwrap_err();
        assert!(e.message().contains("must be subscripted"));
    }

    #[test]
    fn rejects_subscript_outside_loop() {
        let e = compile("kernel k { array A: f64[4]; scalar a: f64; a = A[i]; }").unwrap_err();
        assert!(e.message().contains("loop variable"));
    }

    #[test]
    fn rejects_duplicate_declarations() {
        let e = compile("kernel k { scalar a: f64; array a: f64[2]; }").unwrap_err();
        assert!(e.message().contains("duplicate"));
    }

    #[test]
    fn shadowed_loop_vars_resolve_innermost() {
        let p = compile(
            "kernel k { array A: f64[8]; scalar x: f64;
             for i in 0..2 { for i in 0..4 { x = A[2*i]; } } }",
        )
        .unwrap();
        let blocks = p.blocks();
        let inner = blocks[0].loops[1];
        let s = &blocks[0].block.stmts()[0];
        let r = s.uses()[0].as_array().unwrap();
        assert_eq!(r.access.dim(0).coeff(inner.var), 2);
        assert_eq!(r.access.dim(0).coeff(blocks[0].loops[0].var), 0);
    }

    #[test]
    fn select_lowers_to_ir_select() {
        let p = compile(
            "kernel k { array A: f64[8]; for i in 0..8 {
                 A[i] = select(A[i] < 0.0, 0.0, A[i]);
             } }",
        )
        .unwrap();
        let b = &p.blocks()[0];
        assert_eq!(b.block.len(), 1);
        let s = &b.block.stmts()[0];
        assert!(matches!(s.expr(), Expr::Select(slp_ir::CmpOp::Lt, ..)));
        assert_eq!(s.expr().operands().len(), 4);
    }

    #[test]
    fn branchy_kernel_compiles_to_straight_line_selects() {
        // clamp-to-[0,1] via if/else; must lower to one basic block of
        // selects after if-conversion.
        let p = compile(
            "kernel clamp { array A: f64[8]; for i in 0..8 {
                 if A[i] < 0.0 {
                     A[i] = 0.0;
                 } else if A[i] > 1.0 {
                     A[i] = 1.0;
                 }
             } }",
        )
        .unwrap();
        let blocks = p.blocks();
        assert_eq!(blocks.len(), 1, "if-conversion keeps a single block");
        let selects = blocks[0]
            .block
            .stmts()
            .iter()
            .filter(|s| matches!(s.expr(), Expr::Select(..)))
            .count();
        assert!(selects >= 2, "both branches become selects: {p}");
        // The flattened program must round-trip through the emitter.
        let src = p.to_source();
        let again = compile(&src).unwrap();
        assert_eq!(again.stmt_count(), p.stmt_count());
    }

    #[test]
    fn branchy_errors_keep_source_lines() {
        let e = compile("kernel k { scalar x: f64;\nif x < 0.0 {\n  x = zz;\n} }").unwrap_err();
        assert!(e.message().contains("not declared"), "{e}");
        assert_eq!(e.line(), 3, "diagnostics survive if-conversion");
    }

    #[test]
    fn round_trips_paper_figure15_input() {
        // Figure 15 (a): the running example of the paper.
        let p = compile(
            r#"kernel fig15 {
                const N = 16;
                array A: f64[4*N];
                array B: f64[8*N];
                scalar a, b, c, d, g, h, q, r: f64;
                for i in 0..N {
                    a = A[i];
                    b = A[i+1];
                    c = a * B[4*i];
                    d = b * B[4*i+4];
                    g = q * B[4*i-2];
                    h = r * B[4*i+2];
                    A[2*i] = d + a * c;
                    A[2*i+2] = g + r * h;
                }
            }"#,
        )
        .unwrap();
        assert_eq!(p.stmt_count(), 8);
        let b = &p.blocks()[0];
        assert_eq!(b.block.len(), 8);
    }
}
