//! Tokens of the kernel mini-language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `kernel`
    Kernel,
    /// `array`
    Array,
    /// `scalar`
    Scalar,
    /// `const`
    Const,
    /// `for`
    For,
    /// `in`
    In,
    /// `step`
    Step,
    /// `if`
    If,
    /// `else`
    Else,
    /// `f32` / `f64` / `i8` / `i16` / `i32` / `i64`
    Type(slp_ir::ScalarType),
    /// An identifier.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// A string literal (kernel names).
    Str(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `..`
    DotDot,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Kernel => write!(f, "kernel"),
            Token::Array => write!(f, "array"),
            Token::Scalar => write!(f, "scalar"),
            Token::Const => write!(f, "const"),
            Token::For => write!(f, "for"),
            Token::In => write!(f, "in"),
            Token::Step => write!(f, "step"),
            Token::If => write!(f, "if"),
            Token::Else => write!(f, "else"),
            Token::Type(t) => write!(f, "{t}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Colon => write!(f, ":"),
            Token::Semi => write!(f, ";"),
            Token::Comma => write!(f, ","),
            Token::Eq => write!(f, "="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::DotDot => write!(f, ".."),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::EqEq => write!(f, "=="),
            Token::Ne => write!(f, "!="),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}
