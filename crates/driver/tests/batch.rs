//! Integration tests of the batch layer: panic isolation, time budgets,
//! graceful degradation to scalar, hard failures for bad input, and
//! determinism of output order and bytes across thread counts.

use slp_core::{CompiledKernel, MachineConfig, SlpConfig, Strategy, VerifyError};
use slp_driver::{
    compile_batch, encode_kernel, BatchConfig, CompileCache, CompileRequest, DriverError,
    VerifyLevel,
};
use slp_ir::Program;

const GOOD: &str = "kernel good { array A: f64[16]; array B: f64[16]; \
                    for i in 0..16 { A[i] = A[i] + B[i]; } }";

fn request(name: &str, source: &str, config: SlpConfig) -> CompileRequest {
    CompileRequest {
        name: name.to_string(),
        source: source.to_string(),
        config,
        verify: VerifyLevel::Static,
    }
}

fn holistic() -> SlpConfig {
    SlpConfig::for_machine(MachineConfig::intel_dunnington(), Strategy::Holistic)
}

/// A verify hook that rejects every kernel — the pipeline panics on a
/// rejecting hook, which is exactly the in-pipeline panic the guard
/// must contain.
fn rejecting_hook(_: &Program, _: &CompiledKernel) -> Result<(), VerifyError> {
    Err(VerifyError::from("injected failure for batch tests"))
}

/// A verify hook that hangs far past any test budget.
fn hanging_hook(_: &Program, _: &CompiledKernel) -> Result<(), VerifyError> {
    std::thread::sleep(std::time::Duration::from_secs(300));
    Ok(())
}

#[test]
fn panicking_kernel_degrades_to_scalar_and_the_rest_compile() {
    let requests = vec![
        request("first", GOOD, holistic()),
        request("bomb", GOOD, holistic().with_verifier(rejecting_hook)),
        request("last", GOOD, holistic()),
    ];
    let outcomes = compile_batch(&requests, None, &BatchConfig::default());

    assert_eq!(outcomes.len(), 3);
    assert_eq!(outcomes[0].name, "first");
    assert!(outcomes[0].is_clean());
    assert_eq!(outcomes[2].name, "last");
    assert!(outcomes[2].is_clean());

    let bomb = &outcomes[1];
    let reason = bomb.degraded.as_deref().expect("degradation recorded");
    assert!(reason.contains("panic"), "reason: {reason}");
    assert!(reason.contains("injected failure"), "reason: {reason}");
    let kernel = &bomb
        .result
        .as_ref()
        .expect("scalar fallback compiled")
        .kernel;
    assert!(matches!(kernel.config.strategy, Strategy::Scalar));
    assert_eq!(kernel.stats.superwords, 0);
}

#[test]
fn over_budget_kernel_degrades_to_scalar() {
    let requests = vec![
        request("slow", GOOD, holistic().with_verifier(hanging_hook)),
        request("fast", GOOD, holistic()),
    ];
    let config = BatchConfig {
        budget_ms: Some(200),
        ..BatchConfig::default()
    };
    let outcomes = compile_batch(&requests, None, &config);

    let slow = &outcomes[0];
    let reason = slow.degraded.as_deref().expect("timeout recorded");
    assert!(reason.contains("200 ms"), "reason: {reason}");
    let kernel = &slow
        .result
        .as_ref()
        .expect("scalar fallback compiled")
        .kernel;
    assert!(matches!(kernel.config.strategy, Strategy::Scalar));

    assert!(outcomes[1].is_clean());
}

#[test]
fn bad_input_is_a_hard_failure_not_a_degradation() {
    let requests = vec![
        request("broken", "kernel oops {", holistic()),
        request("fine", GOOD, holistic()),
    ];
    let outcomes = compile_batch(&requests, None, &BatchConfig::default());

    assert!(outcomes[0].degraded.is_none(), "parse errors never degrade");
    assert!(matches!(outcomes[0].result, Err(DriverError::Parse(_))));
    assert!(outcomes[1].is_clean());
}

#[test]
fn disabling_degradation_surfaces_the_original_error() {
    let requests = vec![request(
        "bomb",
        GOOD,
        holistic().with_verifier(rejecting_hook),
    )];
    let config = BatchConfig {
        degrade: false,
        ..BatchConfig::default()
    };
    let outcomes = compile_batch(&requests, None, &config);
    assert!(outcomes[0].degraded.is_none());
    assert!(matches!(outcomes[0].result, Err(DriverError::Panic(_))));
}

#[test]
fn thread_count_changes_neither_order_nor_bytes() {
    let corpus = slp_suite::corpus(42, 10);
    let requests: Vec<CompileRequest> = corpus
        .iter()
        .map(|(name, source)| request(name, source, holistic()))
        .collect();

    let reference: Vec<(String, String)> = compile_batch(&requests, None, &BatchConfig::default())
        .iter()
        .map(|o| {
            let kernel = &o.result.as_ref().expect("corpus compiles").kernel;
            (o.name.clone(), encode_kernel(kernel).to_compact())
        })
        .collect();

    for threads in [1, 2, 8] {
        let config = BatchConfig {
            threads,
            ..BatchConfig::default()
        };
        let run: Vec<(String, String)> = compile_batch(&requests, None, &config)
            .iter()
            .map(|o| {
                let kernel = &o.result.as_ref().expect("corpus compiles").kernel;
                (o.name.clone(), encode_kernel(kernel).to_compact())
            })
            .collect();
        assert_eq!(run, reference, "threads={threads} diverged");
    }
}

#[test]
fn batch_shares_the_cache_across_duplicate_sources() {
    let corpus = slp_suite::corpus(3, 6);
    let requests: Vec<CompileRequest> = corpus
        .iter()
        .map(|(name, source)| request(name, source, holistic()))
        .collect();

    let cache = CompileCache::in_memory(64);
    let first = compile_batch(&requests, Some(&cache), &BatchConfig::default());
    assert!(first.iter().all(|o| o.is_clean()));

    let second = compile_batch(&requests, Some(&cache), &BatchConfig::default());
    assert!(second
        .iter()
        .all(|o| o.result.as_ref().expect("compiles").cache_hit()));
}
