//! Integration tests of the content-addressed cache through the public
//! [`compile_source`] entry point: fingerprint sensitivity, tier
//! behaviour, on-disk persistence across cache instances, and the
//! repeat-batch hit rate the driver promises.

use std::fs;
use std::path::PathBuf;

use slp_core::{MachineConfig, SlpConfig, Strategy};
use slp_driver::{
    compile_source, encode_kernel, CacheDisposition, CompileCache, CompileRequest, VerifyLevel,
};

const SRC: &str = "kernel k { array A: f64[32]; array B: f64[32]; \
                   for i in 0..32 { A[i] = A[i] + 2.0 * B[i]; } }";

fn request(source: &str, config: SlpConfig) -> CompileRequest {
    CompileRequest {
        name: "k".to_string(),
        source: source.to_string(),
        config,
        verify: VerifyLevel::Static,
    }
}

fn holistic() -> SlpConfig {
    SlpConfig::for_machine(MachineConfig::intel_dunnington(), Strategy::Holistic)
}

/// A unique, empty scratch directory per test (no tempfile crate in the
/// container; best-effort cleanup by the next run).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("slp-driver-cache-test-{}", tag));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn identical_requests_hit_each_changed_dimension_misses() {
    let cache = CompileCache::in_memory(64);

    let cold = compile_source(&request(SRC, holistic()), Some(&cache)).expect("compiles");
    assert_eq!(cold.cache, CacheDisposition::Compiled);

    // Identical request: memory hit with the same kernel bytes.
    let warm = compile_source(&request(SRC, holistic()), Some(&cache)).expect("compiles");
    assert_eq!(warm.cache, CacheDisposition::MemoryHit);
    assert_eq!(warm.fingerprint, cold.fingerprint);
    assert_eq!(
        encode_kernel(&warm.kernel).to_compact(),
        encode_kernel(&cold.kernel).to_compact()
    );
    // The cached verify report rides along.
    assert_eq!(warm.report, cold.report);

    // Whitespace is part of the source text: a cosmetic edit misses.
    let touched =
        compile_source(&request(&format!("{SRC} "), holistic()), Some(&cache)).expect("compiles");
    assert_eq!(touched.cache, CacheDisposition::Compiled);
    assert_ne!(touched.fingerprint, cold.fingerprint);

    // Strategy change misses.
    let baseline = compile_source(
        &request(
            SRC,
            SlpConfig::for_machine(MachineConfig::intel_dunnington(), Strategy::Baseline),
        ),
        Some(&cache),
    )
    .expect("compiles");
    assert_eq!(baseline.cache, CacheDisposition::Compiled);

    // Machine change misses.
    let amd = compile_source(
        &request(
            SRC,
            SlpConfig::for_machine(MachineConfig::amd_phenom_ii(), Strategy::Holistic),
        ),
        Some(&cache),
    )
    .expect("compiles");
    assert_eq!(amd.cache, CacheDisposition::Compiled);

    // Layout flag misses.
    let layout =
        compile_source(&request(SRC, holistic().with_layout()), Some(&cache)).expect("compiles");
    assert_eq!(layout.cache, CacheDisposition::Compiled);

    // Verification level is part of the key (it changes the payload).
    let mut unverified = request(SRC, holistic());
    unverified.verify = VerifyLevel::None;
    let unverified = compile_source(&unverified, Some(&cache)).expect("compiles");
    assert_eq!(unverified.cache, CacheDisposition::Compiled);
    assert!(unverified.report.is_none());

    // ...and each of those now hits on repeat.
    let again =
        compile_source(&request(SRC, holistic().with_layout()), Some(&cache)).expect("compiles");
    assert_eq!(again.cache, CacheDisposition::MemoryHit);
}

#[test]
fn refine_toggle_recompiles_instead_of_reusing_a_stale_certificate() {
    // `--refine` changes which dependences survive pruning, hence which
    // superwords form and which accesses the bytecode translator may run
    // unchecked. Turning it on (or off) must change the fingerprint and
    // force a fresh compile — never reuse the other configuration's
    // kernel and its memory-safety certificate.
    let cache = CompileCache::in_memory(64);

    let plain = compile_source(&request(SRC, holistic()), Some(&cache)).expect("compiles");
    assert_eq!(plain.cache, CacheDisposition::Compiled);
    assert!(plain.kernel.safety.all_proven_safe());

    let refined = compile_source(&request(SRC, holistic().with_refined_deps()), Some(&cache))
        .expect("compiles");
    assert_eq!(
        refined.cache,
        CacheDisposition::Compiled,
        "refine_deps must be a fingerprint dimension, not a cache hit"
    );
    assert_ne!(refined.fingerprint, plain.fingerprint);
    // The refined compile carries its own certificate, freshly computed
    // and mirrored into the compile stats.
    assert!(refined.kernel.safety.all_proven_safe());
    assert_eq!(
        refined.kernel.stats.accesses_proven_safe,
        refined.kernel.safety.proven_safe()
    );

    // Both configurations hit their own entries on repeat, certificate
    // intact.
    let warm = compile_source(&request(SRC, holistic().with_refined_deps()), Some(&cache))
        .expect("compiles");
    assert_eq!(warm.cache, CacheDisposition::MemoryHit);
    assert_eq!(warm.kernel.safety, refined.kernel.safety);
}

#[test]
fn disk_tier_survives_a_new_cache_instance() {
    let dir = scratch("persist");

    let cold = {
        let cache = CompileCache::with_disk(8, &dir);
        let outcome = compile_source(&request(SRC, holistic()), Some(&cache)).expect("compiles");
        assert_eq!(outcome.cache, CacheDisposition::Compiled);
        outcome
    };

    // One entry landed on disk, named by the fingerprint.
    let entry = dir.join(format!("{}.json", cold.fingerprint.to_hex()));
    assert!(entry.is_file(), "expected {}", entry.display());

    // A fresh cache (empty memory tier) over the same directory answers
    // from disk with byte-identical kernel, the original report and the
    // original timings.
    let cache = CompileCache::with_disk(8, &dir);
    let warm = compile_source(&request(SRC, holistic()), Some(&cache)).expect("compiles");
    assert_eq!(warm.cache, CacheDisposition::DiskHit);
    assert_eq!(warm.fingerprint, cold.fingerprint);
    assert_eq!(
        encode_kernel(&warm.kernel).to_compact(),
        encode_kernel(&cold.kernel).to_compact()
    );
    assert_eq!(warm.report, cold.report);
    assert_eq!(warm.timings, cold.timings);

    // The disk hit was promoted to memory: the next lookup is a memory
    // hit.
    let hot = compile_source(&request(SRC, holistic()), Some(&cache)).expect("compiles");
    assert_eq!(hot.cache, CacheDisposition::MemoryHit);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_disk_entries_miss_and_are_replaced() {
    let dir = scratch("corrupt");

    let cache = CompileCache::with_disk(8, &dir);
    let cold = compile_source(&request(SRC, holistic()), Some(&cache)).expect("compiles");
    let entry = dir.join(format!("{}.json", cold.fingerprint.to_hex()));
    fs::write(&entry, b"{ definitely not a cached kernel").expect("clobber entry");

    // Fresh instance so the memory tier cannot answer.
    let cache = CompileCache::with_disk(8, &dir);
    let recompiled = compile_source(&request(SRC, holistic()), Some(&cache)).expect("compiles");
    assert_eq!(recompiled.cache, CacheDisposition::Compiled);
    assert!(cache.stats().disk_errors >= 1);

    // The recompile rewrote a good entry.
    let cache = CompileCache::with_disk(8, &dir);
    let warm = compile_source(&request(SRC, holistic()), Some(&cache)).expect("compiles");
    assert_eq!(warm.cache, CacheDisposition::DiskHit);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn repeat_corpus_run_hits_at_least_ninety_percent() {
    let cache = CompileCache::in_memory(256);
    let corpus = slp_suite::corpus(7, 12);
    assert!(corpus.len() >= 10);

    for (name, source) in &corpus {
        let mut req = request(source, holistic());
        req.name = name.clone();
        compile_source(&req, Some(&cache)).expect("corpus kernel compiles");
    }
    let after_cold = cache.stats();
    assert_eq!(after_cold.memory_hits + after_cold.disk_hits, 0);

    for (name, source) in &corpus {
        let mut req = request(source, holistic());
        req.name = name.clone();
        let outcome = compile_source(&req, Some(&cache)).expect("corpus kernel compiles");
        assert!(outcome.cache_hit(), "{name} missed on the second pass");
    }
    let stats = cache.stats();
    assert!(
        stats.hit_rate() >= 0.5,
        "two passes should hit half overall, got {:.2}",
        stats.hit_rate()
    );
    // Second pass alone: 100% (≥ the 90% the driver promises).
    assert_eq!(stats.memory_hits as usize, corpus.len());
}

#[test]
fn degraded_scalar_fallback_never_poisons_the_requested_key() {
    // The verify hook is excluded from the fingerprint (it cannot change
    // the produced kernel, only panic on a bad one), so a hooked and an
    // unhooked Holistic request share a cache key. If the batch driver
    // ever cached the Strategy::Scalar fallback of a panicked compile
    // under the *requested* key, a later clean compile of the same source
    // would silently be served a scalar kernel. Pin down that it does
    // not: the fallback lands under its own (scalar) fingerprint only.
    use slp_core::VerifyError;
    use slp_driver::{compile_batch, BatchConfig};

    fn rejecting(_: &slp_ir::Program, _: &slp_core::CompiledKernel) -> Result<(), VerifyError> {
        // `compile` panics with the report when a hook rejects; under the
        // batch guard that surfaces as DriverError::Panic and triggers
        // the scalar degradation path.
        Err(VerifyError::new("injected rejection"))
    }

    let cache = CompileCache::in_memory(64);
    let hooked = request(SRC, holistic().with_verifier(rejecting));
    let requested_fp = hooked.fingerprint();
    assert_eq!(
        requested_fp,
        request(SRC, holistic()).fingerprint(),
        "precondition: the hook must not be part of the key"
    );

    let outcomes = compile_batch(
        std::slice::from_ref(&hooked),
        Some(&cache),
        &BatchConfig {
            threads: 1,
            ..BatchConfig::default()
        },
    );
    assert_eq!(outcomes.len(), 1);
    let outcome = &outcomes[0];
    assert!(
        outcome.degraded.is_some(),
        "the hooked compile must degrade"
    );
    let fallback = outcome.result.as_ref().expect("scalar fallback compiles");
    assert_eq!(fallback.kernel.config.strategy, Strategy::Scalar);
    assert_ne!(
        fallback.fingerprint, requested_fp,
        "the fallback must be keyed as a scalar compile"
    );

    // The requested configuration's key must still be vacant...
    let clean = compile_source(&request(SRC, holistic()), Some(&cache)).expect("clean compile");
    assert_eq!(clean.cache, CacheDisposition::Compiled, "poisoned key");
    // ...and serve the requested strategy, not the degraded fallback.
    assert_eq!(clean.kernel.config.strategy, Strategy::Holistic);
}
