//! Parallel batch compilation with panic isolation, time budgets and
//! graceful degradation.
//!
//! A batch shards its requests across a scoped worker pool. Each request
//! compiles inside a guard ([`compile_guarded`]): the actual pipeline
//! runs on a dedicated, named thread so that
//!
//! * a panicking compile (an optimizer invariant violation, a rejecting
//!   verify hook) is caught and reported as [`DriverError::Panic`]
//!   without printing a backtrace or taking the worker down, and
//! * a compile that exceeds its time budget is abandoned
//!   ([`DriverError::Timeout`]) — the guard thread is orphaned and the
//!   worker moves on.
//!
//! With [`BatchConfig::degrade`] set (the default), a panicked or
//! timed-out kernel is recompiled under [`Strategy::Scalar`] with the
//! layout stage off — the configuration that exercises none of the
//! optimizer — so the batch still produces a runnable kernel for every
//! well-formed input. The degradation is recorded, never silent. Parse
//! and validation errors are the *input's* fault and are reported as
//! hard failures without a scalar retry.
//!
//! Output order is deterministic: results are addressed by input index,
//! so neither the thread count nor scheduling jitter can reorder them.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Once};
use std::thread;
use std::time::Duration;

use slp_core::Strategy;

use crate::{
    CacheDisposition, CachedCompile, CompileCache, CompileOutcome, CompileRequest, DriverError,
};

/// Name prefix of the threads that run untrusted compiles. The panic
/// hook installed by [`compile_guarded`] suppresses panic output for
/// these threads only; everything else panics loudly as usual.
const GUARD_PREFIX: &str = "slp-guard:";

static SILENCER: Once = Once::new();

fn install_panic_silencer() {
    SILENCER.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let guarded = thread::current()
                .name()
                .is_some_and(|n| n.starts_with(GUARD_PREFIX));
            if !guarded {
                previous(info);
            }
        }));
    });
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// [`crate::compile_source`] wrapped in panic isolation and an optional
/// time budget.
///
/// The cache is consulted and updated on the *calling* thread; only the
/// parse→validate→compile→verify work runs on the guard thread. On a
/// timeout the guard thread is orphaned (it parks no locks and will be
/// reaped at process exit); its eventual result is discarded rather
/// than cached, so a hung compile can never poison the cache.
pub fn compile_guarded(
    req: &CompileRequest,
    cache: Option<&CompileCache>,
    budget_ms: Option<u64>,
) -> Result<CompileOutcome, DriverError> {
    let start = std::time::Instant::now();
    let fp = req.fingerprint();
    if let Some(cache) = cache {
        if let Some((entry, tier)) = cache.get(fp) {
            return Ok(CompileOutcome {
                kernel: entry.kernel,
                report: entry.report,
                prove: entry.prove,
                timings: entry.timings,
                fingerprint: fp,
                cache: match tier {
                    crate::CacheTier::Memory => CacheDisposition::MemoryHit,
                    crate::CacheTier::Disk => CacheDisposition::DiskHit,
                },
                wall_nanos: crate::elapsed_nanos(start),
            });
        }
    }

    install_panic_silencer();
    let (tx, rx) = mpsc::channel();
    let guarded_req = req.clone();
    thread::Builder::new()
        .name(format!("{GUARD_PREFIX}{}", req.name))
        .spawn(move || {
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                crate::compile_source(&guarded_req, None)
            }));
            let flattened = match result {
                Ok(r) => r,
                Err(payload) => Err(DriverError::Panic(panic_message(payload.as_ref()))),
            };
            // The receiver may have timed out and gone away; that is
            // fine, the result is simply dropped.
            let _ = tx.send(flattened);
        })
        .expect("spawn compile guard thread");

    let dead = || DriverError::Panic("compile guard thread died".to_string());
    let outcome = match budget_ms {
        Some(ms) => match rx.recv_timeout(Duration::from_millis(ms)) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(DriverError::Timeout(ms)),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(dead()),
        },
        None => rx.recv().unwrap_or_else(|_| Err(dead())),
    }?;

    if let Some(cache) = cache {
        cache.put(
            fp,
            &CachedCompile {
                kernel: outcome.kernel.clone(),
                report: outcome.report.clone(),
                prove: outcome.prove,
                timings: outcome.timings,
            },
        );
    }
    Ok(CompileOutcome {
        fingerprint: fp,
        wall_nanos: crate::elapsed_nanos(start),
        ..outcome
    })
}

/// Knobs of [`compile_batch`].
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Worker threads; `0` means one per available core.
    pub threads: usize,
    /// Per-kernel compile budget in milliseconds; `None` means
    /// unbounded.
    pub budget_ms: Option<u64>,
    /// Whether a panicked or timed-out kernel is retried under
    /// [`Strategy::Scalar`] instead of failing the entry.
    pub degrade: bool,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            threads: 0,
            budget_ms: None,
            degrade: true,
        }
    }
}

/// The batch's verdict on one request.
#[derive(Debug)]
pub struct KernelOutcome {
    /// The request's display name.
    pub name: String,
    /// The compilation result. When `degraded` is set, this is the
    /// *scalar fallback's* result.
    pub result: Result<CompileOutcome, DriverError>,
    /// `Some(why)` when the requested configuration failed and the
    /// entry was recompiled under [`Strategy::Scalar`]; the payload
    /// describes the original failure.
    pub degraded: Option<String>,
}

impl KernelOutcome {
    /// Whether this entry produced a kernel at the *requested*
    /// configuration (no degradation, no error).
    pub fn is_clean(&self) -> bool {
        self.result.is_ok() && self.degraded.is_none()
    }
}

fn scalar_fallback(req: &CompileRequest) -> CompileRequest {
    let mut fallback = req.clone();
    fallback.config.strategy = Strategy::Scalar;
    fallback.config.layout = false;
    // The fallback must exercise as little machinery as possible — in
    // particular not a custom verify hook, which may be the very thing
    // that panicked or hung.
    fallback.config.verify = None;
    fallback
}

fn run_one(
    req: &CompileRequest,
    cache: Option<&CompileCache>,
    config: &BatchConfig,
) -> KernelOutcome {
    let first = compile_guarded(req, cache, config.budget_ms);
    match first {
        Ok(outcome) => KernelOutcome {
            name: req.name.clone(),
            result: Ok(outcome),
            degraded: None,
        },
        Err(err @ (DriverError::Panic(_) | DriverError::Timeout(_))) if config.degrade => {
            let reason = err.to_string();
            let retry = compile_guarded(&scalar_fallback(req), cache, config.budget_ms);
            match retry {
                Ok(outcome) => KernelOutcome {
                    name: req.name.clone(),
                    result: Ok(outcome),
                    degraded: Some(reason),
                },
                Err(retry_err) => KernelOutcome {
                    name: req.name.clone(),
                    result: Err(retry_err),
                    degraded: Some(reason),
                },
            }
        }
        Err(err) => KernelOutcome {
            name: req.name.clone(),
            result: Err(err),
            degraded: None,
        },
    }
}

/// Applies `f` to every item of `items` across a scoped worker pool and
/// returns the results *in input order*.
///
/// Workers pull indices from a shared atomic counter, so load balances
/// dynamically, but results are written back by index: neither the
/// thread count nor scheduling jitter can reorder the output. `threads`
/// of `0` means one worker per available core; the pool never exceeds
/// the item count. This is the engine under [`compile_batch`], exported
/// so other front-ends (the benchmark harness's independent kernel runs,
/// figure regeneration) can share the same deterministic fan-out.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = match threads {
        0 => thread::available_parallelism().map_or(1, |p| p.get()),
        t => t,
    }
    .min(n);

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel();
    thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(i, &items[i]);
                if tx.send((i, result)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, result) in rx {
        slots[i] = Some(result);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index produced exactly one result"))
        .collect()
}

/// Compiles `requests` across a scoped worker pool.
///
/// Runs on [`parallel_map`]: output is always in input order with one
/// entry per request, regardless of thread count or scheduling. The
/// batch never aborts — every entry carries its own success, degradation
/// or failure.
pub fn compile_batch(
    requests: &[CompileRequest],
    cache: Option<&CompileCache>,
    config: &BatchConfig,
) -> Vec<KernelOutcome> {
    parallel_map(requests, config.threads, |_, req| {
        run_one(req, cache, config)
    })
}
