//! The `slpd` serve loop: line-delimited JSON over a reader/writer pair.
//!
//! Each input line is one JSON request; each output line is one JSON
//! response, flushed immediately. All compile requests share the one
//! [`CompileCache`] passed in, so a long-lived `slpd` process answers
//! repeated sources from memory and survives restarts via the disk
//! tier. The loop itself never compiles on the calling thread — every
//! compile goes through [`crate::compile_guarded`], so a panicking or
//! over-budget request yields an error *response*, not a dead server.
//!
//! Requests (`cmd` selects the verb):
//!
//! * `{"cmd":"compile","source":"…", …}` — compile one kernel. Optional
//!   fields: `name`, `strategy` (`scalar|native|slp|global`, default
//!   `global`), `machine` (`intel|amd`, default `intel`), `unroll`
//!   (default `0` = auto), `layout` (default `false`), `verify`
//!   (`none|static|full|prove`, default `static`), `budget_ms`.
//! * `{"cmd":"stats"}` — cache counters and request totals.
//! * `{"cmd":"shutdown"}` — acknowledge and end the loop (EOF works
//!   too).
//!
//! Responses always carry `"ok"`; errors add `"kind"`
//! (`request|parse|invalid|panic|timeout`) and `"error"`.

use std::io::{BufRead, Write};

use slp_core::SlpConfig;

use crate::json::Json;
use crate::report::{stats_json, timings_json};
use crate::{
    compile_guarded, parse_machine, parse_strategy, CompileCache, CompileOutcome, CompileRequest,
    DriverError, VerifyLevel,
};

/// Totals of one [`serve`] loop, returned at shutdown/EOF.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Lines processed (including malformed ones).
    pub requests: u64,
    /// Compile requests that produced a kernel.
    pub compiled: u64,
    /// Of those, how many either cache tier answered.
    pub cache_hits: u64,
    /// Requests answered with `"ok": false`.
    pub errors: u64,
}

fn error_response(kind: &str, message: &str) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("kind", Json::str(kind)),
        ("error", Json::str(message)),
    ])
}

fn driver_error_response(err: &DriverError) -> Json {
    let kind = match err {
        DriverError::Parse(_) => "parse",
        DriverError::Invalid(_) => "invalid",
        DriverError::Panic(_) => "panic",
        DriverError::Timeout(_) => "timeout",
    };
    error_response(kind, &err.to_string())
}

fn outcome_response(name: &str, outcome: &CompileOutcome) -> Json {
    let mut fields = vec![
        ("ok", Json::Bool(true)),
        ("name", Json::str(name)),
        ("cache", Json::str(outcome.cache.name())),
        ("fingerprint", Json::str(outcome.fingerprint.to_hex())),
        ("stmts", Json::num(outcome.kernel.stats.stmts as u64)),
        (
            "superwords",
            Json::num(outcome.kernel.stats.superwords as u64),
        ),
        (
            "vectorized_stmts",
            Json::num(outcome.kernel.stats.vectorized_stmts as u64),
        ),
    ];
    match &outcome.report {
        Some(report) => {
            fields.push(("verify_errors", Json::num(report.error_count() as u64)));
            fields.push(("verify_warnings", Json::num(report.warning_count() as u64)));
            fields.push((
                "diagnostics",
                Json::Arr(
                    report
                        .diagnostics
                        .iter()
                        .map(|d| Json::str(d.to_string()))
                        .collect(),
                ),
            ));
        }
        None => {
            fields.push(("verify_errors", Json::Null));
            fields.push(("verify_warnings", Json::Null));
            fields.push(("diagnostics", Json::Arr(Vec::new())));
        }
    }
    fields.push((
        "prove",
        outcome.prove.map_or(Json::Null, |v| Json::str(v.name())),
    ));
    fields.push(("phase_nanos", timings_json(&outcome.timings)));
    fields.push(("wall_nanos", Json::num(outcome.wall_nanos)));
    Json::obj(fields)
}

/// Builds a [`CompileRequest`] (plus budget) from a `compile` verb's
/// fields, or an error message naming the offending field.
fn parse_compile_request(req: &Json) -> Result<(CompileRequest, Option<u64>), String> {
    let source = req
        .get("source")
        .and_then(Json::string)
        .ok_or("missing string field \"source\"")?
        .to_string();
    let name = req
        .get("name")
        .and_then(Json::string)
        .unwrap_or("<anonymous>")
        .to_string();

    let strategy_name = req
        .get("strategy")
        .and_then(Json::string)
        .unwrap_or("global");
    let strategy = parse_strategy(strategy_name)
        .ok_or_else(|| format!("unknown strategy {strategy_name:?}"))?;
    let machine_name = req.get("machine").and_then(Json::string).unwrap_or("intel");
    let machine =
        parse_machine(machine_name).ok_or_else(|| format!("unknown machine {machine_name:?}"))?;
    let verify_name = req.get("verify").and_then(Json::string).unwrap_or("static");
    let verify = VerifyLevel::from_name(verify_name)
        .ok_or_else(|| format!("unknown verify level {verify_name:?}"))?;

    let mut config = SlpConfig::for_machine(machine, strategy);
    if let Some(unroll) = req.get("unroll") {
        config.unroll = usize::try_from(unroll.u64().ok_or("field \"unroll\" must be an integer")?)
            .map_err(|_| "field \"unroll\" out of range")?;
    }
    if let Some(layout) = req.get("layout") {
        if layout.bool().ok_or("field \"layout\" must be a boolean")? {
            config = config.with_layout();
        }
    }
    let budget_ms = match req.get("budget_ms") {
        Some(b) => Some(b.u64().ok_or("field \"budget_ms\" must be an integer")?),
        None => None,
    };

    Ok((
        CompileRequest {
            name,
            source,
            config,
            verify,
        },
        budget_ms,
    ))
}

fn handle_line(line: &str, cache: &CompileCache, summary: &mut ServeSummary) -> (Json, bool) {
    let req = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => return (error_response("request", &e.to_string()), false),
    };
    let cmd = req.get("cmd").and_then(Json::string).unwrap_or("");
    match cmd {
        "compile" => match parse_compile_request(&req) {
            Ok((compile_req, budget_ms)) => {
                match compile_guarded(&compile_req, Some(cache), budget_ms) {
                    Ok(outcome) => {
                        summary.compiled += 1;
                        if outcome.cache_hit() {
                            summary.cache_hits += 1;
                        }
                        (outcome_response(&compile_req.name, &outcome), false)
                    }
                    Err(err) => (driver_error_response(&err), false),
                }
            }
            Err(msg) => (error_response("request", &msg), false),
        },
        "stats" => (
            Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("cache", stats_json(&cache.stats())),
                ("requests", Json::num(summary.requests)),
                ("compiled", Json::num(summary.compiled)),
            ]),
            false,
        ),
        "shutdown" => (
            Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("shutdown", Json::Bool(true)),
            ]),
            true,
        ),
        "" => (
            error_response("request", "missing string field \"cmd\""),
            false,
        ),
        other => (
            error_response("request", &format!("unknown cmd {other:?}")),
            false,
        ),
    }
}

/// Runs the serve loop until `shutdown` or EOF. Every response is a
/// single line, flushed before the next request is read.
pub fn serve(
    input: impl BufRead,
    mut output: impl Write,
    cache: &CompileCache,
) -> std::io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        summary.requests += 1;
        let (response, shutdown) = handle_line(&line, cache, &mut summary);
        if !matches!(response.get("ok"), Some(Json::Bool(true))) {
            summary.errors += 1;
        }
        writeln!(output, "{}", response.to_compact())?;
        output.flush()?;
        if shutdown {
            break;
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn run(lines: &str) -> (Vec<Json>, ServeSummary) {
        let cache = CompileCache::in_memory(8);
        let mut out = Vec::new();
        let summary = serve(Cursor::new(lines), &mut out, &cache).expect("serve I/O");
        let responses = String::from_utf8(out)
            .expect("utf8 output")
            .lines()
            .map(|l| Json::parse(l).expect("response parses"))
            .collect();
        (responses, summary)
    }

    const SRC: &str = "kernel k { array A: f64[16]; array B: f64[16]; \
                       for i in 0..16 { A[i] = A[i] + B[i]; } }";

    #[test]
    fn compile_then_hit_then_stats() {
        let compile = format!(
            "{}\n{}\n{}\n",
            format_args!(
                "{{\"cmd\":\"compile\",\"name\":\"k\",\"source\":{:?}}}",
                SRC
            ),
            format_args!(
                "{{\"cmd\":\"compile\",\"name\":\"k\",\"source\":{:?}}}",
                SRC
            ),
            "{\"cmd\":\"stats\"}",
        );
        let (responses, summary) = run(&compile);
        assert_eq!(responses.len(), 3);
        assert_eq!(responses[0].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            responses[0].get("cache").and_then(Json::string),
            Some("compiled")
        );
        assert_eq!(
            responses[1].get("cache").and_then(Json::string),
            Some("memory")
        );
        // Same source, same config => same key.
        assert_eq!(
            responses[0].get("fingerprint").and_then(Json::string),
            responses[1].get("fingerprint").and_then(Json::string)
        );
        let stats = responses[2].get("cache").expect("stats carry cache");
        assert_eq!(stats.get("memory_hits").and_then(Json::u64), Some(1));
        assert_eq!(summary.compiled, 2);
        assert_eq!(summary.cache_hits, 1);
        assert_eq!(summary.errors, 0);
    }

    #[test]
    fn malformed_and_unknown_requests_are_survivable() {
        let (responses, summary) =
            run("not json\n{\"cmd\":\"frobnicate\"}\n{\"cmd\":\"compile\"}\n");
        assert_eq!(responses.len(), 3);
        for r in &responses {
            assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
            assert_eq!(r.get("kind").and_then(Json::string), Some("request"));
        }
        assert_eq!(summary.errors, 3);
    }

    #[test]
    fn parse_errors_are_reported_with_kind() {
        let (responses, _) = run("{\"cmd\":\"compile\",\"source\":\"kernel {\"}\n");
        assert_eq!(responses[0].get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            responses[0].get("kind").and_then(Json::string),
            Some("parse")
        );
    }

    #[test]
    fn shutdown_stops_the_loop() {
        let (responses, summary) = run("{\"cmd\":\"shutdown\"}\n{\"cmd\":\"stats\"}\n");
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].get("shutdown"), Some(&Json::Bool(true)));
        assert_eq!(summary.requests, 1);
    }
}
