//! Content-addressed cache keys.
//!
//! A compilation is a pure function of (source text, configuration,
//! compiler version): the pipeline has no other inputs, no randomness
//! and no environment dependence. The cache can therefore address
//! compiled kernels by a [`Fingerprint`] of exactly those three things.
//!
//! The fingerprint is a 128-bit FNV-1a hash (two independent 64-bit
//! streams over the same canonical byte string) — not cryptographic,
//! but collision-safe for cache purposes at any realistic corpus size,
//! and fully deterministic across processes and platforms, which is
//! what lets the on-disk tier survive process restarts.
//!
//! What goes into the key (see [`fingerprint`]):
//!
//! * the crate version — a new compiler silently invalidates every old
//!   entry rather than replaying stale kernels,
//! * the source text, byte for byte,
//! * every semantic knob of [`SlpConfig`]: strategy, unroll factor,
//!   layout flag, machine description (including the full cost table),
//!   scheduling/array-layout/grouping parameters, and the
//!   cross-iteration-reuse flag.
//!
//! The [`SlpConfig::verify`] hook is deliberately *excluded*: it cannot
//! change the produced kernel, only panic on a bad one. The
//! [`SlpConfig::packer`] handle is likewise excluded — the driver always
//! installs the same solver for `Strategy::Optimal`, and the solver's
//! *budgets* (which do change the packing) are keyed as plain fields.
//! The driver's own verification level is keyed separately (it changes
//! the cached `Report`), via [`fingerprint_with_tag`].

use std::fmt;

use slp_core::{CostParams, MachineConfig, SlpConfig, Strategy};

/// A 128-bit content-addressed cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64, pub u64);

impl Fingerprint {
    /// The 32-hex-digit rendering used as the on-disk file stem.
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.0, self.1)
    }

    /// Parses [`Fingerprint::to_hex`] output.
    pub fn from_hex(s: &str) -> Option<Fingerprint> {
        if s.len() != 32 {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Fingerprint(hi, lo))
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
// A second, independent stream: same prime, different offset basis
// (the FNV-0 hash of "slp-driver").
const FNV_OFFSET_B: u64 = 0x9ae1_6a3b_2f90_404f;

struct Hasher {
    a: u64,
    b: u64,
}

impl Hasher {
    fn new() -> Self {
        Hasher {
            a: FNV_OFFSET,
            b: FNV_OFFSET_B,
        }
    }

    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Writes a field with a separator so concatenations cannot collide
    /// (`("ab", "c")` hashes differently from `("a", "bc")`).
    fn field(&mut self, name: &str, value: impl fmt::Display) {
        self.write(name.as_bytes());
        self.write(b"=");
        self.write(value.to_string().as_bytes());
        self.write(b"\x1f");
    }

    fn finish(self) -> Fingerprint {
        Fingerprint(self.a, self.b)
    }
}

/// Bit-exact float rendering for key derivation. `{:?}` is Rust's
/// shortest roundtrip form, so two distinct `f64` values always render
/// differently (including `-0.0` vs `0.0`).
fn float(x: f64) -> String {
    format!("{x:?}")
}

fn write_cost(h: &mut Hasher, prefix: &str, c: &CostParams) {
    for (name, v) in [
        ("scalar_op", c.scalar_op),
        ("simd_op", c.simd_op),
        ("scalar_load", c.scalar_load),
        ("scalar_store", c.scalar_store),
        ("vector_load", c.vector_load),
        ("unaligned_load", c.unaligned_load),
        ("vector_store", c.vector_store),
        ("unaligned_store", c.unaligned_store),
        ("insert", c.insert),
        ("extract", c.extract),
        ("permute", c.permute),
        ("reg_move", c.reg_move),
        ("loop_overhead", c.loop_overhead),
    ] {
        h.field(&format!("{prefix}.{name}"), float(v));
    }
}

fn write_machine(h: &mut Hasher, m: &MachineConfig) {
    h.field("machine.name", &m.name);
    h.field("machine.datapath_bits", m.datapath_bits);
    h.field("machine.vector_regs", m.vector_regs);
    h.field("machine.cores", m.cores);
    h.field("machine.clock_ghz", float(m.clock_ghz));
    write_cost(h, "machine.cost", &m.cost);
}

fn strategy_tag(s: Strategy) -> &'static str {
    match s {
        Strategy::Scalar => "scalar",
        Strategy::Native => "native",
        Strategy::Baseline => "baseline",
        Strategy::Holistic => "holistic",
        Strategy::Optimal => "optimal",
    }
}

/// Computes the cache key of compiling `source` under `config` with this
/// crate version.
pub fn fingerprint(source: &str, config: &SlpConfig) -> Fingerprint {
    fingerprint_with_tag(source, config, "")
}

/// Like [`fingerprint`], with an extra caller-chosen tag mixed in.
///
/// The driver uses the tag for request dimensions that change the cached
/// *payload* without changing the kernel — the verification level, whose
/// `Report` is stored alongside the kernel.
pub fn fingerprint_with_tag(source: &str, config: &SlpConfig, tag: &str) -> Fingerprint {
    let mut h = Hasher::new();
    h.field("version", env!("CARGO_PKG_VERSION"));
    h.field("tag", tag);
    h.field("source", source);
    h.field("strategy", strategy_tag(config.strategy));
    h.field("unroll", config.unroll);
    h.field("layout", config.layout);
    h.field("cross_iteration_reuse", config.cross_iteration_reuse);
    h.field("refine_deps", config.refine_deps);
    // The solver's anytime budgets are semantic inputs: a different
    // budget can yield a different (still valid) packing.
    h.field("opt.deadline_ms", config.opt.deadline_ms);
    h.field("opt.max_nodes", config.opt.max_nodes);
    h.field(
        "schedule.live_set_capacity",
        config.schedule.live_set_capacity,
    );
    h.field(
        "array_layout.max_replication_factor",
        float(config.array_layout.max_replication_factor),
    );
    write_cost(&mut h, "array_layout.cost", &config.array_layout.cost);
    h.field(
        "weights.contiguous_bonus",
        float(config.weights.contiguous_bonus),
    );
    h.field(
        "weights.gather_penalty",
        float(config.weights.gather_penalty),
    );
    h.field(
        "weights.scalar_reuse_weight",
        float(config.weights.scalar_reuse_weight),
    );
    h.field("weights.store_factor", float(config.weights.store_factor));
    write_machine(&mut h, &config.machine);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_config() -> SlpConfig {
        SlpConfig::for_machine(MachineConfig::intel_dunnington(), Strategy::Holistic)
    }

    #[test]
    fn hex_roundtrips() {
        let fp = Fingerprint(0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210);
        assert_eq!(Fingerprint::from_hex(&fp.to_hex()), Some(fp));
        assert_eq!(Fingerprint::from_hex("xyz"), None);
        assert_eq!(Fingerprint::from_hex(""), None);
    }

    #[test]
    fn identical_inputs_agree() {
        let src = "kernel k { array A: f64[8]; for i in 0..8 { A[i] = A[i] + 1.0; } }";
        assert_eq!(
            fingerprint(src, &base_config()),
            fingerprint(src, &base_config())
        );
    }

    #[test]
    fn each_dimension_changes_the_key() {
        let src = "kernel k { array A: f64[8]; for i in 0..8 { A[i] = A[i] + 1.0; } }";
        let base = fingerprint(src, &base_config());

        // Source text.
        let src2 = "kernel k { array A: f64[8]; for i in 0..8 { A[i] = A[i] + 2.0; } }";
        assert_ne!(fingerprint(src2, &base_config()), base);

        // Strategy.
        let mut c = base_config();
        c.strategy = Strategy::Baseline;
        assert_ne!(fingerprint(src, &c), base);

        // Machine.
        let c = SlpConfig::for_machine(MachineConfig::amd_phenom_ii(), Strategy::Holistic);
        assert_ne!(fingerprint(src, &c), base);

        // Layout flag.
        let c = base_config().with_layout();
        assert_ne!(fingerprint(src, &c), base);

        // Unroll factor.
        let mut c = base_config();
        c.unroll = 4;
        assert_ne!(fingerprint(src, &c), base);

        // Range-refined dependence flag.
        let c = base_config().with_refined_deps();
        assert_ne!(fingerprint(src, &c), base);

        // Solver anytime budgets (each dimension separately).
        let c = base_config().with_opt_budget(7, 1 << 20);
        assert_ne!(fingerprint(src, &c), base);
        let c = base_config().with_opt_budget(500, 7);
        assert_ne!(fingerprint(src, &c), base);

        // Verification tag.
        assert_ne!(fingerprint_with_tag(src, &base_config(), "full"), base);
    }

    #[test]
    fn verify_hook_does_not_change_the_key() {
        let src = "kernel k { array A: f64[8]; for i in 0..8 { A[i] = A[i] + 1.0; } }";
        let hooked = base_config().with_verifier(slp_verify::pipeline_hook);
        assert_eq!(fingerprint(src, &hooked), fingerprint(src, &base_config()));
    }
}
