//! Persistence codec: [`CompiledKernel`], verify [`Report`]s and
//! [`PhaseTimings`] to/from the driver's JSON value type.
//!
//! The on-disk cache tier stores whole compilations; this module defines
//! the stable encoding. Two properties matter more than compactness:
//!
//! * **Bit-exactness** — constants, cost parameters and scalar addresses
//!   must survive a round trip unchanged (floats use shortest-roundtrip
//!   rendering, see [`crate::json`]), and statement/block ids must be
//!   preserved verbatim because schedules reference them.
//! * **Determinism** — encoding the same kernel twice yields identical
//!   bytes, so the batch determinism tests can compare outputs across
//!   thread counts, and cache files are reproducible.
//!
//! The two lossy spots are [`SlpConfig::verify`] and
//! [`SlpConfig::packer`]: trait objects have no serialized form, so
//! decoded configs carry `None` for both. The driver never relies on
//! either hook of a cached kernel — it re-runs verification itself and
//! caches the resulting report beside the kernel, and a cached kernel's
//! schedule already embodies whatever the packer decided (the solver's
//! anytime budgets, which *are* semantic inputs, round-trip as plain
//! numbers).

use slp_core::{
    AccessCert, AccessVerdict, ArrayLayoutConfig, BlockSchedule, CompileStats, CompiledKernel,
    CostParams, MachineConfig, Phase, PhaseTimings, SafetyCert, ScalarLayout, ScheduleConfig,
    ScheduledItem, SlpConfig, Strategy, SuperwordStmt, WeightParams,
};
use slp_ir::{
    AccessVector, AffineExpr, ArrayId, ArrayRef, BinOp, BlockId, CmpOp, Dest, Expr, Item, Loop,
    LoopHeader, LoopVarId, Operand, Program, ScalarType, Statement, StmtId, UnOp, VarId,
};
use slp_verify::{Diagnostic, LintCode, Report, Span};

use crate::json::Json;

/// The encoding version stamped into every payload; bumped on any
/// incompatible change so old cache files read as misses, not garbage.
/// v4 added `Strategy::Optimal`, the solver budget fields in the config
/// and the `opt_*` solver statistics. v5 added the `sel.*` predicated
/// blend operators produced by if-conversion. v6 added the memory-safety
/// certificate (`safety`) and the `accesses_*` verdict counters — a
/// stale v5 kernel must not be served without a certificate, so v5
/// payloads read as misses.
pub const FORMAT_VERSION: u64 = 6;

/// A decode failure: the payload was syntactically valid JSON but not a
/// valid kernel encoding (truncated, corrupted, or a different format
/// version).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "kernel codec: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

type Result<T> = std::result::Result<T, CodecError>;

fn err<T>(msg: impl Into<String>) -> Result<T> {
    Err(CodecError(msg.into()))
}

fn req<'a>(v: &'a Json, key: &str) -> Result<&'a Json> {
    match v.get(key) {
        Some(x) => Ok(x),
        None => err(format!("missing key '{key}'")),
    }
}

fn req_u64(v: &Json, key: &str) -> Result<u64> {
    req(v, key)?
        .u64()
        .ok_or_else(|| CodecError(format!("'{key}' is not an unsigned integer")))
}

fn req_u32(v: &Json, key: &str) -> Result<u32> {
    u32::try_from(req_u64(v, key)?).map_err(|_| CodecError(format!("'{key}' overflows u32")))
}

fn req_i64(v: &Json, key: &str) -> Result<i64> {
    req(v, key)?
        .i64()
        .ok_or_else(|| CodecError(format!("'{key}' is not an integer")))
}

fn req_f64(v: &Json, key: &str) -> Result<f64> {
    req(v, key)?
        .f64()
        .ok_or_else(|| CodecError(format!("'{key}' is not a number")))
}

fn req_bool(v: &Json, key: &str) -> Result<bool> {
    req(v, key)?
        .bool()
        .ok_or_else(|| CodecError(format!("'{key}' is not a bool")))
}

fn req_str<'a>(v: &'a Json, key: &str) -> Result<&'a str> {
    req(v, key)?
        .string()
        .ok_or_else(|| CodecError(format!("'{key}' is not a string")))
}

fn req_arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json]> {
    req(v, key)?
        .array()
        .ok_or_else(|| CodecError(format!("'{key}' is not an array")))
}

// ---- scalar types and operators ------------------------------------------

fn scalar_type_tag(ty: ScalarType) -> &'static str {
    match ty {
        ScalarType::I8 => "i8",
        ScalarType::I16 => "i16",
        ScalarType::I32 => "i32",
        ScalarType::I64 => "i64",
        ScalarType::F32 => "f32",
        ScalarType::F64 => "f64",
    }
}

fn scalar_type_from(tag: &str) -> Result<ScalarType> {
    Ok(match tag {
        "i8" => ScalarType::I8,
        "i16" => ScalarType::I16,
        "i32" => ScalarType::I32,
        "i64" => ScalarType::I64,
        "f32" => ScalarType::F32,
        "f64" => ScalarType::F64,
        other => return err(format!("unknown scalar type '{other}'")),
    })
}

fn expr_op_tag(e: &Expr) -> &'static str {
    match e {
        Expr::Copy(_) => "copy",
        Expr::Unary(UnOp::Neg, _) => "neg",
        Expr::Unary(UnOp::Abs, _) => "abs",
        Expr::Unary(UnOp::Sqrt, _) => "sqrt",
        Expr::Binary(BinOp::Add, _, _) => "add",
        Expr::Binary(BinOp::Sub, _, _) => "sub",
        Expr::Binary(BinOp::Mul, _, _) => "mul",
        Expr::Binary(BinOp::Div, _, _) => "div",
        Expr::Binary(BinOp::Min, _, _) => "min",
        Expr::Binary(BinOp::Max, _, _) => "max",
        Expr::MulAdd(_, _, _) => "muladd",
        Expr::Select(op, _, _, _, _) => match op {
            CmpOp::Lt => "sel.lt",
            CmpOp::Le => "sel.le",
            CmpOp::Gt => "sel.gt",
            CmpOp::Ge => "sel.ge",
            CmpOp::Eq => "sel.eq",
            CmpOp::Ne => "sel.ne",
        },
    }
}

// ---- affine expressions and references -----------------------------------

fn encode_affine(e: &AffineExpr) -> Json {
    Json::obj([
        ("c", Json::Num(e.constant() as f64)),
        (
            "t",
            Json::Arr(
                e.terms()
                    .map(|(v, k)| Json::Arr(vec![Json::num(v.index() as u64), Json::Num(k as f64)]))
                    .collect(),
            ),
        ),
    ])
}

fn decode_affine(v: &Json) -> Result<AffineExpr> {
    let constant = req_i64(v, "c")?;
    let mut terms = Vec::new();
    for t in req_arr(v, "t")? {
        let pair = t
            .array()
            .ok_or_else(|| CodecError("term not a pair".into()))?;
        if pair.len() != 2 {
            return err("term not a pair");
        }
        let var = pair[0].u64().ok_or_else(|| CodecError("term var".into()))? as u32;
        let coeff = pair[1]
            .i64()
            .ok_or_else(|| CodecError("term coeff".into()))?;
        terms.push((LoopVarId::new(var), coeff));
    }
    Ok(AffineExpr::from_terms(terms, constant))
}

fn encode_access(a: &AccessVector) -> Json {
    Json::Arr(a.dims().iter().map(encode_affine).collect())
}

fn decode_access(v: &Json) -> Result<AccessVector> {
    let dims = v
        .array()
        .ok_or_else(|| CodecError("access not an array".into()))?
        .iter()
        .map(decode_affine)
        .collect::<Result<Vec<_>>>()?;
    Ok(AccessVector::new(dims))
}

fn encode_array_ref(r: &ArrayRef) -> Json {
    Json::obj([
        ("a", Json::num(r.array.index() as u64)),
        ("x", encode_access(&r.access)),
    ])
}

fn decode_array_ref(v: &Json) -> Result<ArrayRef> {
    let array = ArrayId::new(req_u32(v, "a")?);
    let access = decode_access(req(v, "x")?)?;
    Ok(ArrayRef::new(array, access))
}

// ---- operands, destinations, expressions, statements ---------------------

fn encode_operand(o: &Operand) -> Json {
    match o {
        Operand::Scalar(v) => Json::obj([("s", Json::num(v.index() as u64))]),
        Operand::Array(r) => Json::obj([("a", encode_array_ref(r))]),
        Operand::Const(c) => Json::obj([("k", Json::float(*c))]),
    }
}

fn decode_operand(v: &Json) -> Result<Operand> {
    if let Some(s) = v.get("s") {
        let idx = s.u64().ok_or_else(|| CodecError("operand var".into()))? as u32;
        Ok(Operand::Scalar(VarId::new(idx)))
    } else if let Some(a) = v.get("a") {
        Ok(Operand::Array(decode_array_ref(a)?))
    } else if let Some(k) = v.get("k") {
        let c = k.f64().ok_or_else(|| CodecError("operand const".into()))?;
        Ok(Operand::Const(c))
    } else {
        err("operand has no 's'/'a'/'k' key")
    }
}

fn encode_dest(d: &Dest) -> Json {
    match d {
        Dest::Scalar(v) => Json::obj([("s", Json::num(v.index() as u64))]),
        Dest::Array(r) => Json::obj([("a", encode_array_ref(r))]),
    }
}

fn decode_dest(v: &Json) -> Result<Dest> {
    if let Some(s) = v.get("s") {
        let idx = s.u64().ok_or_else(|| CodecError("dest var".into()))? as u32;
        Ok(Dest::Scalar(VarId::new(idx)))
    } else if let Some(a) = v.get("a") {
        Ok(Dest::Array(decode_array_ref(a)?))
    } else {
        err("dest has no 's'/'a' key")
    }
}

fn encode_expr(e: &Expr) -> Json {
    Json::obj([
        ("o", Json::str(expr_op_tag(e))),
        (
            "v",
            Json::Arr(e.operands().into_iter().map(encode_operand).collect()),
        ),
    ])
}

fn decode_expr(v: &Json) -> Result<Expr> {
    let op = req_str(v, "o")?;
    let args = req_arr(v, "v")?
        .iter()
        .map(decode_operand)
        .collect::<Result<Vec<_>>>()?;
    let arity_err = || CodecError(format!("operator '{op}' has wrong arity"));
    let mut args = args.into_iter();
    let mut next = || args.next().ok_or_else(arity_err);
    Ok(match op {
        "copy" => Expr::Copy(next()?),
        "neg" => Expr::Unary(UnOp::Neg, next()?),
        "abs" => Expr::Unary(UnOp::Abs, next()?),
        "sqrt" => Expr::Unary(UnOp::Sqrt, next()?),
        "add" => Expr::Binary(BinOp::Add, next()?, next()?),
        "sub" => Expr::Binary(BinOp::Sub, next()?, next()?),
        "mul" => Expr::Binary(BinOp::Mul, next()?, next()?),
        "div" => Expr::Binary(BinOp::Div, next()?, next()?),
        "min" => Expr::Binary(BinOp::Min, next()?, next()?),
        "max" => Expr::Binary(BinOp::Max, next()?, next()?),
        "muladd" => Expr::MulAdd(next()?, next()?, next()?),
        "sel.lt" => Expr::Select(CmpOp::Lt, next()?, next()?, next()?, next()?),
        "sel.le" => Expr::Select(CmpOp::Le, next()?, next()?, next()?, next()?),
        "sel.gt" => Expr::Select(CmpOp::Gt, next()?, next()?, next()?, next()?),
        "sel.ge" => Expr::Select(CmpOp::Ge, next()?, next()?, next()?, next()?),
        "sel.eq" => Expr::Select(CmpOp::Eq, next()?, next()?, next()?, next()?),
        "sel.ne" => Expr::Select(CmpOp::Ne, next()?, next()?, next()?, next()?),
        other => return err(format!("unknown operator '{other}'")),
    })
}

fn encode_stmt(s: &Statement) -> Json {
    Json::obj([
        ("i", Json::num(s.id().index() as u64)),
        ("d", encode_dest(s.dest())),
        ("e", encode_expr(s.expr())),
    ])
}

fn decode_stmt(v: &Json, max_id: &mut u32) -> Result<Statement> {
    let id = req_u32(v, "i")?;
    *max_id = (*max_id).max(id);
    let dest = decode_dest(req(v, "d")?)?;
    let expr = decode_expr(req(v, "e")?)?;
    Ok(Statement::new(StmtId::new(id), dest, expr))
}

// ---- loop structure -------------------------------------------------------

fn encode_header(h: &LoopHeader) -> Json {
    Json::obj([
        ("v", Json::num(h.var.index() as u64)),
        ("lo", Json::Num(h.lower as f64)),
        ("hi", Json::Num(h.upper as f64)),
        ("st", Json::Num(h.step as f64)),
    ])
}

fn decode_header(v: &Json) -> Result<LoopHeader> {
    Ok(LoopHeader {
        var: LoopVarId::new(req_u32(v, "v")?),
        lower: req_i64(v, "lo")?,
        upper: req_i64(v, "hi")?,
        step: req_i64(v, "st")?,
    })
}

fn encode_item(item: &Item) -> Json {
    match item {
        Item::Stmt(s) => Json::obj([("stmt", encode_stmt(s))]),
        Item::Loop(l) => Json::obj([
            ("loop", encode_header(&l.header)),
            ("body", Json::Arr(l.body.iter().map(encode_item).collect())),
        ]),
    }
}

fn decode_item(v: &Json, max_id: &mut u32) -> Result<Item> {
    if let Some(s) = v.get("stmt") {
        Ok(Item::Stmt(decode_stmt(s, max_id)?))
    } else if let Some(h) = v.get("loop") {
        let header = decode_header(h)?;
        let body = req_arr(v, "body")?
            .iter()
            .map(|i| decode_item(i, max_id))
            .collect::<Result<Vec<_>>>()?;
        Ok(Item::Loop(Loop { header, body }))
    } else {
        err("item has no 'stmt'/'loop' key")
    }
}

// ---- programs -------------------------------------------------------------

/// Encodes a whole program, ids included.
pub fn encode_program(p: &Program) -> Json {
    Json::obj([
        ("name", Json::str(p.name())),
        (
            "scalars",
            Json::Arr(
                p.scalars()
                    .iter()
                    .map(|s| {
                        Json::obj([
                            ("n", Json::str(&s.name)),
                            ("t", Json::str(scalar_type_tag(s.ty))),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "arrays",
            Json::Arr(
                p.arrays()
                    .iter()
                    .map(|a| {
                        Json::obj([
                            ("n", Json::str(&a.name)),
                            ("t", Json::str(scalar_type_tag(a.ty))),
                            (
                                "d",
                                Json::Arr(a.dims.iter().map(|&d| Json::Num(d as f64)).collect()),
                            ),
                            ("in", Json::Bool(a.is_input)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "loop_vars",
            Json::Arr(
                (0..p.loop_var_count())
                    .map(|i| Json::str(p.loop_var_name(LoopVarId::new(i as u32))))
                    .collect(),
            ),
        ),
        (
            "items",
            Json::Arr(p.items().iter().map(encode_item).collect()),
        ),
    ])
}

/// Decodes a program encoded by [`encode_program`], restoring all ids.
pub fn decode_program(v: &Json) -> Result<Program> {
    let mut p = Program::new(req_str(v, "name")?);
    for s in req_arr(v, "scalars")? {
        p.add_scalar(req_str(s, "n")?, scalar_type_from(req_str(s, "t")?)?);
    }
    for a in req_arr(v, "arrays")? {
        let dims = req_arr(a, "d")?
            .iter()
            .map(|d| d.i64().ok_or_else(|| CodecError("array dim".into())))
            .collect::<Result<Vec<_>>>()?;
        p.add_array(
            req_str(a, "n")?,
            scalar_type_from(req_str(a, "t")?)?,
            dims,
            req_bool(a, "in")?,
        );
    }
    for lv in req_arr(v, "loop_vars")? {
        p.add_loop_var(
            lv.string()
                .ok_or_else(|| CodecError("loop var name".into()))?,
        );
    }
    let mut max_id = 0u32;
    for item in req_arr(v, "items")? {
        let item = decode_item(item, &mut max_id)?;
        p.push_item(item);
    }
    p.ensure_stmt_ids(max_id.saturating_add(1));
    Ok(p)
}

// ---- schedules, layouts, stats, config ------------------------------------

fn encode_schedule(s: &BlockSchedule) -> Json {
    Json::Arr(
        s.items()
            .iter()
            .map(|item| match item {
                ScheduledItem::Single(id) => Json::obj([("1", Json::num(id.index() as u64))]),
                ScheduledItem::Superword(sw) => Json::obj([(
                    "w",
                    Json::Arr(
                        sw.lanes()
                            .iter()
                            .map(|l| Json::num(l.index() as u64))
                            .collect(),
                    ),
                )]),
            })
            .collect(),
    )
}

fn decode_schedule(v: &Json) -> Result<BlockSchedule> {
    let mut items = Vec::new();
    for item in v
        .array()
        .ok_or_else(|| CodecError("schedule not an array".into()))?
    {
        if let Some(one) = item.get("1") {
            let id = one.u64().ok_or_else(|| CodecError("single id".into()))? as u32;
            items.push(ScheduledItem::Single(StmtId::new(id)));
        } else if let Some(w) = item.get("w") {
            let lanes = w
                .array()
                .ok_or_else(|| CodecError("superword lanes".into()))?
                .iter()
                .map(|l| {
                    l.u64()
                        .map(|n| StmtId::new(n as u32))
                        .ok_or_else(|| CodecError("lane id".into()))
                })
                .collect::<Result<Vec<_>>>()?;
            if lanes.len() < 2 {
                return err("superword with fewer than two lanes");
            }
            items.push(ScheduledItem::Superword(SuperwordStmt::new(lanes)));
        } else {
            return err("schedule item has no '1'/'w' key");
        }
    }
    Ok(BlockSchedule::new(items))
}

fn encode_cost(c: &CostParams) -> Json {
    Json::obj([
        ("scalar_op", Json::float(c.scalar_op)),
        ("simd_op", Json::float(c.simd_op)),
        ("scalar_load", Json::float(c.scalar_load)),
        ("scalar_store", Json::float(c.scalar_store)),
        ("vector_load", Json::float(c.vector_load)),
        ("unaligned_load", Json::float(c.unaligned_load)),
        ("vector_store", Json::float(c.vector_store)),
        ("unaligned_store", Json::float(c.unaligned_store)),
        ("insert", Json::float(c.insert)),
        ("extract", Json::float(c.extract)),
        ("permute", Json::float(c.permute)),
        ("reg_move", Json::float(c.reg_move)),
        ("loop_overhead", Json::float(c.loop_overhead)),
    ])
}

fn decode_cost(v: &Json) -> Result<CostParams> {
    Ok(CostParams {
        scalar_op: req_f64(v, "scalar_op")?,
        simd_op: req_f64(v, "simd_op")?,
        scalar_load: req_f64(v, "scalar_load")?,
        scalar_store: req_f64(v, "scalar_store")?,
        vector_load: req_f64(v, "vector_load")?,
        unaligned_load: req_f64(v, "unaligned_load")?,
        vector_store: req_f64(v, "vector_store")?,
        unaligned_store: req_f64(v, "unaligned_store")?,
        insert: req_f64(v, "insert")?,
        extract: req_f64(v, "extract")?,
        permute: req_f64(v, "permute")?,
        reg_move: req_f64(v, "reg_move")?,
        loop_overhead: req_f64(v, "loop_overhead")?,
    })
}

fn encode_machine(m: &MachineConfig) -> Json {
    Json::obj([
        ("name", Json::str(&m.name)),
        ("datapath_bits", Json::num(u64::from(m.datapath_bits))),
        ("vector_regs", Json::num(m.vector_regs as u64)),
        ("cores", Json::num(m.cores as u64)),
        ("l1_data_kb", Json::num(u64::from(m.l1_data_kb))),
        ("l2_total_kb", Json::num(u64::from(m.l2_total_kb))),
        ("l3_total_kb", Json::num(u64::from(m.l3_total_kb))),
        ("clock_ghz", Json::float(m.clock_ghz)),
        ("cost", encode_cost(&m.cost)),
    ])
}

fn decode_machine(v: &Json) -> Result<MachineConfig> {
    Ok(MachineConfig {
        name: req_str(v, "name")?.to_string(),
        datapath_bits: req_u32(v, "datapath_bits")?,
        vector_regs: req_u64(v, "vector_regs")? as usize,
        cores: req_u64(v, "cores")? as usize,
        l1_data_kb: req_u32(v, "l1_data_kb")?,
        l2_total_kb: req_u32(v, "l2_total_kb")?,
        l3_total_kb: req_u32(v, "l3_total_kb")?,
        clock_ghz: req_f64(v, "clock_ghz")?,
        cost: decode_cost(req(v, "cost")?)?,
    })
}

fn strategy_tag(s: Strategy) -> &'static str {
    match s {
        Strategy::Scalar => "scalar",
        Strategy::Native => "native",
        Strategy::Baseline => "baseline",
        Strategy::Holistic => "holistic",
        Strategy::Optimal => "optimal",
    }
}

fn strategy_from(tag: &str) -> Result<Strategy> {
    Ok(match tag {
        "scalar" => Strategy::Scalar,
        "native" => Strategy::Native,
        "baseline" => Strategy::Baseline,
        "holistic" => Strategy::Holistic,
        "optimal" => Strategy::Optimal,
        other => return err(format!("unknown strategy '{other}'")),
    })
}

fn encode_config(c: &SlpConfig) -> Json {
    Json::obj([
        ("machine", encode_machine(&c.machine)),
        ("strategy", Json::str(strategy_tag(c.strategy))),
        ("unroll", Json::num(c.unroll as u64)),
        ("layout", Json::Bool(c.layout)),
        (
            "live_set_capacity",
            Json::num(c.schedule.live_set_capacity as u64),
        ),
        (
            "max_replication_factor",
            Json::float(c.array_layout.max_replication_factor),
        ),
        ("layout_cost", encode_cost(&c.array_layout.cost)),
        (
            "weights",
            Json::obj([
                ("contiguous_bonus", Json::float(c.weights.contiguous_bonus)),
                ("gather_penalty", Json::float(c.weights.gather_penalty)),
                (
                    "scalar_reuse_weight",
                    Json::float(c.weights.scalar_reuse_weight),
                ),
                ("store_factor", Json::float(c.weights.store_factor)),
            ]),
        ),
        ("cross_iteration_reuse", Json::Bool(c.cross_iteration_reuse)),
        ("refine_deps", Json::Bool(c.refine_deps)),
        ("opt_deadline_ms", Json::num(c.opt.deadline_ms)),
        ("opt_max_nodes", Json::num(c.opt.max_nodes)),
    ])
}

fn decode_config(v: &Json) -> Result<SlpConfig> {
    let w = req(v, "weights")?;
    Ok(SlpConfig {
        machine: decode_machine(req(v, "machine")?)?,
        strategy: strategy_from(req_str(v, "strategy")?)?,
        unroll: req_u64(v, "unroll")? as usize,
        layout: req_bool(v, "layout")?,
        schedule: ScheduleConfig {
            live_set_capacity: req_u64(v, "live_set_capacity")? as usize,
        },
        array_layout: ArrayLayoutConfig {
            max_replication_factor: req_f64(v, "max_replication_factor")?,
            cost: decode_cost(req(v, "layout_cost")?)?,
        },
        weights: WeightParams {
            contiguous_bonus: req_f64(w, "contiguous_bonus")?,
            gather_penalty: req_f64(w, "gather_penalty")?,
            scalar_reuse_weight: req_f64(w, "scalar_reuse_weight")?,
            store_factor: req_f64(w, "store_factor")?,
        },
        cross_iteration_reuse: req_bool(v, "cross_iteration_reuse")?,
        refine_deps: req_bool(v, "refine_deps")?,
        // Trait objects have no serialized form; see module docs.
        verify: None,
        opt: slp_core::OptParams {
            deadline_ms: req_u64(v, "opt_deadline_ms")?,
            max_nodes: req_u64(v, "opt_max_nodes")?,
        },
        packer: None,
    })
}

// ---- the compiled kernel ---------------------------------------------------

/// Encodes a compiled kernel. Deterministic: equal kernels give equal
/// bytes through [`Json::to_compact`].
pub fn encode_kernel(k: &CompiledKernel) -> Json {
    Json::obj([
        ("format", Json::num(FORMAT_VERSION)),
        ("program", encode_program(&k.program)),
        (
            "schedules",
            Json::Arr(
                k.schedules
                    .iter()
                    .map(|(b, s)| {
                        Json::obj([
                            ("b", Json::num(u64::from(b.0))),
                            ("items", encode_schedule(s)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "scalar_layout",
            Json::obj([
                (
                    "addr",
                    Json::Arr(
                        k.scalar_layout
                            .addresses()
                            .iter()
                            .map(|&a| Json::num(a))
                            .collect(),
                    ),
                ),
                ("total", Json::num(k.scalar_layout.total_bytes())),
                ("optimized", Json::Bool(k.scalar_layout.is_optimized())),
            ]),
        ),
        (
            "replications",
            Json::Arr(
                k.replications
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("src", Json::num(r.source.index() as u64)),
                            ("dst", Json::num(r.dest.index() as u64)),
                            (
                                "lanes",
                                Json::Arr(r.lanes.iter().map(encode_access).collect()),
                            ),
                            (
                                "dest_exprs",
                                Json::Arr(r.dest_exprs.iter().map(encode_affine).collect()),
                            ),
                            (
                                "loops",
                                Json::Arr(r.loops.iter().map(encode_header).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "stats",
            Json::obj([
                ("stmts", Json::num(k.stats.stmts as u64)),
                ("blocks", Json::num(k.stats.blocks as u64)),
                ("superwords", Json::num(k.stats.superwords as u64)),
                (
                    "vectorized_stmts",
                    Json::num(k.stats.vectorized_stmts as u64),
                ),
                (
                    "scalar_packs_laid_out",
                    Json::num(k.stats.scalar_packs_laid_out as u64),
                ),
                ("replications", Json::num(k.stats.replications as u64)),
                ("deps_refuted", Json::num(k.stats.deps_refuted as u64)),
                ("opt_nodes", Json::num(k.stats.opt_nodes)),
                ("opt_gap_ppm", Json::num(k.stats.opt_gap_ppm)),
                ("opt_degraded", Json::Bool(k.stats.opt_degraded)),
                (
                    "accesses_proven_safe",
                    Json::num(k.stats.accesses_proven_safe as u64),
                ),
                (
                    "accesses_unknown",
                    Json::num(k.stats.accesses_unknown as u64),
                ),
                (
                    "accesses_proven_faulting",
                    Json::num(k.stats.accesses_proven_faulting as u64),
                ),
            ]),
        ),
        ("safety", encode_safety(&k.safety)),
        ("config", encode_config(&k.config)),
    ])
}

fn encode_safety(cert: &SafetyCert) -> Json {
    Json::Arr(
        cert.accesses
            .iter()
            .map(|a| {
                Json::obj([
                    ("b", Json::num(u64::from(a.block.0))),
                    ("s", Json::num(a.stmt.index() as u64)),
                    ("r", encode_array_ref(&a.reference)),
                    ("w", Json::Bool(a.is_write)),
                    ("v", Json::str(a.verdict.name())),
                    ("d", Json::str(&a.detail)),
                ])
            })
            .collect(),
    )
}

fn decode_safety(v: &Json) -> Result<SafetyCert> {
    let mut accesses = Vec::new();
    for a in v
        .array()
        .ok_or_else(|| CodecError("safety cert not an array".into()))?
    {
        let verdict = req_str(a, "v")?;
        let verdict = AccessVerdict::from_name(verdict)
            .ok_or_else(|| CodecError(format!("unknown access verdict '{verdict}'")))?;
        accesses.push(AccessCert {
            block: BlockId(req_u32(a, "b")?),
            stmt: StmtId::new(req_u32(a, "s")?),
            reference: decode_array_ref(req(a, "r")?)?,
            is_write: req_bool(a, "w")?,
            verdict,
            detail: req_str(a, "d")?.to_string(),
        });
    }
    Ok(SafetyCert { accesses })
}

/// Decodes a kernel encoded by [`encode_kernel`].
pub fn decode_kernel(v: &Json) -> Result<CompiledKernel> {
    let format = req_u64(v, "format")?;
    if format != FORMAT_VERSION {
        return err(format!(
            "format version {format} (this build reads {FORMAT_VERSION})"
        ));
    }
    let program = decode_program(req(v, "program")?)?;
    let mut schedules = Vec::new();
    for entry in req_arr(v, "schedules")? {
        let block = BlockId(req_u32(entry, "b")?);
        let sched = decode_schedule(req(entry, "items")?)?;
        schedules.push((block, sched));
    }
    let sl = req(v, "scalar_layout")?;
    let addr = req_arr(sl, "addr")?
        .iter()
        .map(|a| a.u64().ok_or_else(|| CodecError("scalar address".into())))
        .collect::<Result<Vec<_>>>()?;
    let scalar_layout =
        ScalarLayout::from_raw(addr, req_u64(sl, "total")?, req_bool(sl, "optimized")?);
    let mut replications = Vec::new();
    for r in req_arr(v, "replications")? {
        replications.push(slp_core::Replication {
            source: ArrayId::new(req_u32(r, "src")?),
            dest: ArrayId::new(req_u32(r, "dst")?),
            lanes: req_arr(r, "lanes")?
                .iter()
                .map(decode_access)
                .collect::<Result<Vec<_>>>()?,
            dest_exprs: req_arr(r, "dest_exprs")?
                .iter()
                .map(decode_affine)
                .collect::<Result<Vec<_>>>()?,
            loops: req_arr(r, "loops")?
                .iter()
                .map(decode_header)
                .collect::<Result<Vec<_>>>()?,
        });
    }
    let st = req(v, "stats")?;
    let stats = CompileStats {
        stmts: req_u64(st, "stmts")? as usize,
        blocks: req_u64(st, "blocks")? as usize,
        superwords: req_u64(st, "superwords")? as usize,
        vectorized_stmts: req_u64(st, "vectorized_stmts")? as usize,
        scalar_packs_laid_out: req_u64(st, "scalar_packs_laid_out")? as usize,
        replications: req_u64(st, "replications")? as usize,
        deps_refuted: req_u64(st, "deps_refuted")? as usize,
        opt_nodes: req_u64(st, "opt_nodes")?,
        opt_gap_ppm: req_u64(st, "opt_gap_ppm")?,
        opt_degraded: req_bool(st, "opt_degraded")?,
        accesses_proven_safe: req_u64(st, "accesses_proven_safe")? as usize,
        accesses_unknown: req_u64(st, "accesses_unknown")? as usize,
        accesses_proven_faulting: req_u64(st, "accesses_proven_faulting")? as usize,
    };
    let safety = decode_safety(req(v, "safety")?)?;
    let config = decode_config(req(v, "config")?)?;
    Ok(CompiledKernel {
        program,
        schedules,
        scalar_layout,
        replications,
        stats,
        safety,
        config,
    })
}

// ---- verify reports and timings --------------------------------------------

/// Encodes a verify report as a list of structured diagnostics.
pub fn encode_report(r: &Report) -> Json {
    Json::Arr(
        r.diagnostics
            .iter()
            .map(|d| {
                Json::obj([
                    ("code", Json::str(d.code.code())),
                    ("severity", Json::str(d.severity.to_string())),
                    ("message", Json::str(&d.message)),
                    (
                        "block",
                        match d.span.block {
                            Some(b) => Json::num(u64::from(b.0)),
                            None => Json::Null,
                        },
                    ),
                    (
                        "stmts",
                        Json::Arr(
                            d.span
                                .stmts
                                .iter()
                                .map(|s| Json::num(s.index() as u64))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

/// Decodes a report encoded by [`encode_report`]. Severity is re-derived
/// from the lint catalogue, which is the source of truth.
pub fn decode_report(v: &Json) -> Result<Report> {
    let mut report = Report::new();
    for d in v
        .array()
        .ok_or_else(|| CodecError("report not an array".into()))?
    {
        let code = req_str(d, "code")?;
        let code = LintCode::from_code(code)
            .ok_or_else(|| CodecError(format!("unknown lint code '{code}'")))?;
        let block = match req(d, "block")? {
            Json::Null => None,
            b => Some(BlockId(
                b.u64().ok_or_else(|| CodecError("span block".into()))? as u32,
            )),
        };
        let stmts = req_arr(d, "stmts")?
            .iter()
            .map(|s| {
                s.u64()
                    .map(|n| StmtId::new(n as u32))
                    .ok_or_else(|| CodecError("span stmt".into()))
            })
            .collect::<Result<Vec<_>>>()?;
        report.push(Diagnostic::new(
            code,
            Span { block, stmts },
            req_str(d, "message")?,
        ));
    }
    Ok(report)
}

/// Encodes per-phase timings as `{phase: nanos}`.
pub fn encode_timings(t: &PhaseTimings) -> Json {
    Json::Obj(
        t.iter()
            .map(|(p, ns)| (p.name().to_string(), Json::num(ns)))
            .collect(),
    )
}

/// Decodes timings encoded by [`encode_timings`].
pub fn decode_timings(v: &Json) -> Result<PhaseTimings> {
    let mut t = PhaseTimings::new();
    for p in Phase::ALL {
        t.set_nanos(p, req_u64(v, p.name())?);
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn compiled(src: &str, layout: bool) -> CompiledKernel {
        let p = slp_lang::compile(src).expect("compiles");
        let mut cfg = SlpConfig::for_machine(MachineConfig::intel_dunnington(), Strategy::Holistic);
        if layout {
            cfg = cfg.with_layout();
        }
        slp_core::compile(&p, &cfg)
    }

    const GATHER: &str = "kernel g {
        const N = 16;
        array A: f64[8*N];
        array B: f64[2*N];
        for i in 0..N {
            B[2*i] = A[4*i] + 1.0;
            B[2*i+1] = A[4*i+3] + 1.0;
        }
    }";

    #[test]
    fn kernel_roundtrips_through_text() {
        for layout in [false, true] {
            let k = compiled(GATHER, layout);
            let text = encode_kernel(&k).to_compact();
            let back = decode_kernel(&json::parse(&text).expect("parses")).expect("decodes");
            assert_eq!(back.program, k.program);
            assert_eq!(back.schedules, k.schedules);
            assert_eq!(back.scalar_layout, k.scalar_layout);
            assert_eq!(back.replications, k.replications);
            assert_eq!(back.stats, k.stats);
            assert_eq!(back.safety, k.safety);
            // Re-encoding the decoded kernel is byte-identical.
            assert_eq!(encode_kernel(&back).to_compact(), text);
        }
    }

    /// The memory-safety certificate is part of the v6 payload: it must
    /// survive the round trip verbatim, including verdicts and details,
    /// so a cache hit can elide bounds checks exactly like a cold
    /// compile.
    #[test]
    fn safety_certificate_roundtrips_with_every_verdict_field() {
        let k = compiled(GATHER, false);
        assert!(
            k.safety.proven_safe() > 0,
            "the gather kernel certifies its accesses"
        );
        let text = encode_kernel(&k).to_compact();
        let back = decode_kernel(&json::parse(&text).expect("parses")).expect("decodes");
        assert_eq!(back.safety, k.safety);
        assert_eq!(
            (
                back.safety.proven_safe(),
                back.safety.unknown(),
                back.safety.proven_faulting()
            ),
            (
                k.safety.proven_safe(),
                k.safety.unknown(),
                k.safety.proven_faulting()
            )
        );
        assert_eq!(
            back.stats.accesses_proven_safe,
            k.stats.accesses_proven_safe
        );
    }

    /// An if-converted kernel: the merge selects must survive the
    /// `sel.*` codec rows bit-for-bit in both directions.
    const BRANCHY: &str = "kernel branchy {
        const N = 16;
        array A: f64[N];
        array B: f64[N];
        for i in 0..N {
            if A[i] < 0.0 {
                B[i] = 0.0;
            } else {
                B[i] = A[i];
            }
        }
    }";

    #[test]
    fn branchy_kernel_roundtrips_and_keeps_its_selects() {
        for layout in [false, true] {
            let k = compiled(BRANCHY, layout);
            let mut selects = 0usize;
            k.program
                .for_each_stmt(|s| selects += matches!(s.expr(), Expr::Select(..)) as usize);
            assert!(selects >= 1, "if-conversion must leave a select behind");
            let text = encode_kernel(&k).to_compact();
            let back = decode_kernel(&json::parse(&text).expect("parses")).expect("decodes");
            assert_eq!(back.program, k.program);
            assert_eq!(back.schedules, k.schedules);
            assert_eq!(encode_kernel(&back).to_compact(), text);
        }
    }

    #[test]
    fn decoded_program_allocates_fresh_ids_above_existing() {
        let k = compiled(GATHER, false);
        let text = encode_kernel(&k).to_compact();
        let mut back = decode_kernel(&json::parse(&text).expect("parses")).expect("decodes");
        let max = {
            let mut m = 0;
            back.program.for_each_stmt(|s| m = m.max(s.id().index()));
            m
        };
        assert!(back.program.fresh_stmt_id().index() > max);
    }

    #[test]
    fn format_version_gates_decoding() {
        let k = compiled(GATHER, false);
        let mut v = encode_kernel(&k);
        if let Json::Obj(pairs) = &mut v {
            for (key, val) in pairs.iter_mut() {
                if key == "format" {
                    *val = Json::num(FORMAT_VERSION + 1);
                }
            }
        }
        assert!(decode_kernel(&v).is_err());
    }

    /// A disk entry written by the v3 codec (pre-`Strategy::Optimal`: no
    /// `opt_*` keys, format stamp 3) must be rejected at the version
    /// gate — a clean cache miss — rather than misdecoded into a kernel
    /// with made-up solver fields.
    #[test]
    fn format_version_3_entries_are_rejected() {
        let k = compiled(GATHER, false);
        let mut v = encode_kernel(&k);
        // Reconstruct the v3 shape: old format stamp, and none of the
        // keys v4 introduced anywhere in the tree.
        fn strip_v4_keys(v: &mut Json) {
            match v {
                Json::Obj(pairs) => {
                    pairs.retain(|(key, _)| {
                        !matches!(
                            key.as_str(),
                            "opt_deadline_ms"
                                | "opt_max_nodes"
                                | "opt_nodes"
                                | "opt_gap_ppm"
                                | "opt_degraded"
                        )
                    });
                    for (key, val) in pairs.iter_mut() {
                        if key == "format" {
                            *val = Json::num(3);
                        }
                        strip_v4_keys(val);
                    }
                }
                Json::Arr(items) => items.iter_mut().for_each(strip_v4_keys),
                _ => {}
            }
        }
        strip_v4_keys(&mut v);
        let err = decode_kernel(&v).expect_err("v3 entry must not decode");
        assert!(
            err.0.contains("format version 3"),
            "rejection must name the version gate, got: {}",
            err.0
        );
    }

    /// A disk entry written by the v5 codec (pre-safety-certificate: no
    /// `safety` payload, no access-verdict stats, format stamp 5) must
    /// be rejected at the version gate — a clean cache miss that forces
    /// recertification — rather than misdecoded into a kernel with an
    /// empty certificate that the VM would trust to elide bounds checks.
    #[test]
    fn format_version_5_entries_are_rejected() {
        let k = compiled(GATHER, false);
        let mut v = encode_kernel(&k);
        // Reconstruct the v5 shape: old format stamp, and none of the
        // keys v6 introduced anywhere in the tree.
        fn strip_v6_keys(v: &mut Json) {
            match v {
                Json::Obj(pairs) => {
                    pairs.retain(|(key, _)| {
                        !matches!(
                            key.as_str(),
                            "safety"
                                | "accesses_proven_safe"
                                | "accesses_unknown"
                                | "accesses_proven_faulting"
                        )
                    });
                    for (key, val) in pairs.iter_mut() {
                        if key == "format" {
                            *val = Json::num(5);
                        }
                        strip_v6_keys(val);
                    }
                }
                Json::Arr(items) => items.iter_mut().for_each(strip_v6_keys),
                _ => {}
            }
        }
        strip_v6_keys(&mut v);
        let err = decode_kernel(&v).expect_err("v5 entry must not decode");
        assert!(
            err.0.contains("format version 5"),
            "rejection must name the version gate, got: {}",
            err.0
        );
    }

    #[test]
    fn report_roundtrips() {
        use slp_ir::BlockId;
        let mut r = Report::new();
        r.push(Diagnostic::new(
            LintCode::MisalignedPack,
            Span::stmts(BlockId(1), vec![StmtId::new(3), StmtId::new(4)]),
            "pack base at odd offset",
        ));
        r.push(Diagnostic::new(
            LintCode::DifferentialMismatch,
            Span::program(),
            "array A differs at [2]",
        ));
        let text = encode_report(&r).to_compact();
        let back = decode_report(&json::parse(&text).expect("parses")).expect("decodes");
        assert_eq!(back, r);
    }

    #[test]
    fn timings_roundtrip() {
        let mut t = PhaseTimings::new();
        t.set_nanos(Phase::Grouping, 123_456);
        t.set_nanos(Phase::Verify, 789);
        let text = encode_timings(&t).to_compact();
        let back = decode_timings(&json::parse(&text).expect("parses")).expect("decodes");
        assert_eq!(back, t);
    }
}
