//! The content-addressed compile cache: an in-memory LRU tier plus an
//! optional on-disk tier.
//!
//! Entries are whole compilations — the [`CompiledKernel`], the verify
//! [`Report`] (if the request asked for verification) and the original
//! compile's [`PhaseTimings`] — keyed by [`Fingerprint`]. The memory
//! tier serves repeat requests within a process (the `slpd serve` loop,
//! repeated kernels in one batch); the disk tier under `.slp-cache/`
//! makes whole corpus re-runs warm across processes, which is what turns
//! a second `slpc batch` over an unchanged tree into a near-no-op.
//!
//! Robustness rules:
//!
//! * a corrupt, truncated or version-mismatched disk entry is a miss —
//!   it is deleted and recompiled, never an error;
//! * disk I/O failures (permissions, full disk) degrade the cache to
//!   memory-only for that operation and are counted in
//!   [`CacheStats::disk_errors`];
//! * disk writes go through a temp file + rename, so a crashed or
//!   concurrent writer can never leave a half-written entry under the
//!   final name.
//!
//! The whole cache is internally synchronized (`&self` methods), so one
//! instance can be shared by every worker of a batch and every request
//! of a serve session.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use slp_core::{CompiledKernel, PhaseTimings};
use slp_verify::Report;

use crate::codec;
use crate::fingerprint::Fingerprint;
use crate::json::{self, Json};

/// One cached compilation.
#[derive(Debug, Clone)]
pub struct CachedCompile {
    /// The compiled kernel.
    pub kernel: CompiledKernel,
    /// The verify report of the original compile, if verification ran.
    pub report: Option<Report>,
    /// The symbolic proof verdict, if the compile ran at
    /// [`crate::VerifyLevel::Prove`].
    pub prove: Option<crate::ProveVerdict>,
    /// Per-phase timings of the original (cold) compile.
    pub timings: PhaseTimings,
}

/// Where a cache lookup was answered from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// The in-memory LRU tier.
    Memory,
    /// The on-disk tier (the entry was promoted to memory on the way).
    Disk,
}

/// Running counters of cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the memory tier.
    pub memory_hits: u64,
    /// Lookups answered from the disk tier.
    pub disk_hits: u64,
    /// Lookups answered by neither tier.
    pub misses: u64,
    /// Entries stored.
    pub stores: u64,
    /// Memory-tier evictions (LRU overflow).
    pub evictions: u64,
    /// Disk entries dropped or skipped because of I/O or decode
    /// problems.
    pub disk_errors: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.memory_hits + self.disk_hits + self.misses
    }

    /// Hits (either tier) over lookups, in `[0, 1]`; `0` before any
    /// lookup.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            (self.memory_hits + self.disk_hits) as f64 / lookups as f64
        }
    }
}

struct MemoryTier {
    entries: HashMap<Fingerprint, CachedCompile>,
    /// LRU order, least recently used first.
    order: Vec<Fingerprint>,
    capacity: usize,
}

impl MemoryTier {
    fn touch(&mut self, fp: Fingerprint) {
        self.order.retain(|&f| f != fp);
        self.order.push(fp);
    }

    fn get(&mut self, fp: Fingerprint) -> Option<CachedCompile> {
        let entry = self.entries.get(&fp).cloned()?;
        self.touch(fp);
        Some(entry)
    }

    fn put(&mut self, fp: Fingerprint, entry: CachedCompile) -> u64 {
        self.entries.insert(fp, entry);
        self.touch(fp);
        let mut evictions = 0;
        while self.entries.len() > self.capacity && !self.order.is_empty() {
            let victim = self.order.remove(0);
            self.entries.remove(&victim);
            evictions += 1;
        }
        evictions
    }
}

/// The two-tier compile cache. See the module docs for the design.
#[derive(Debug)]
pub struct CompileCache {
    memory: Mutex<MemoryTierBox>,
    disk_dir: Option<PathBuf>,
    stats: Mutex<CacheStats>,
}

// Wrapper so `CompileCache` can derive a useful `Debug` without dumping
// whole kernels.
struct MemoryTierBox(MemoryTier);

impl std::fmt::Debug for MemoryTierBox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryTier")
            .field("entries", &self.0.entries.len())
            .field("capacity", &self.0.capacity)
            .finish()
    }
}

/// The default memory-tier capacity (entries).
pub const DEFAULT_MEMORY_CAPACITY: usize = 256;

/// The conventional on-disk cache location relative to the working
/// directory, used by the `slpc`/`slpd` front-ends.
pub const DEFAULT_DISK_DIR: &str = ".slp-cache";

impl CompileCache {
    /// A memory-only cache holding at most `capacity` entries.
    pub fn in_memory(capacity: usize) -> Self {
        CompileCache {
            memory: Mutex::new(MemoryTierBox(MemoryTier {
                entries: HashMap::new(),
                order: Vec::new(),
                capacity: capacity.max(1),
            })),
            disk_dir: None,
            stats: Mutex::new(CacheStats::default()),
        }
    }

    /// A two-tier cache persisting entries under `dir` (created on first
    /// store).
    pub fn with_disk(capacity: usize, dir: impl Into<PathBuf>) -> Self {
        let mut cache = CompileCache::in_memory(capacity);
        cache.disk_dir = Some(dir.into());
        cache
    }

    /// The on-disk directory, if this cache has a disk tier.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk_dir.as_deref()
    }

    /// A snapshot of the running counters.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock().expect("cache stats lock")
    }

    /// Number of entries currently in the memory tier.
    pub fn memory_len(&self) -> usize {
        self.memory.lock().expect("cache lock").0.entries.len()
    }

    /// Empties the memory tier (the disk tier is untouched). Useful in
    /// tests and for bounding memory between batches.
    pub fn clear_memory(&self) {
        let mut mem = self.memory.lock().expect("cache lock");
        mem.0.entries.clear();
        mem.0.order.clear();
    }

    /// Looks up a compilation, returning the entry and the tier that
    /// answered.
    pub fn get(&self, fp: Fingerprint) -> Option<(CachedCompile, CacheTier)> {
        if let Some(entry) = self.memory.lock().expect("cache lock").0.get(fp) {
            self.stats.lock().expect("cache stats lock").memory_hits += 1;
            return Some((entry, CacheTier::Memory));
        }
        if let Some(entry) = self.disk_get(fp) {
            // Promote to memory so repeat lookups stay cheap.
            self.memory
                .lock()
                .expect("cache lock")
                .0
                .put(fp, entry.clone());
            self.stats.lock().expect("cache stats lock").disk_hits += 1;
            return Some((entry, CacheTier::Disk));
        }
        self.stats.lock().expect("cache stats lock").misses += 1;
        None
    }

    /// Stores a compilation under `fp` in both tiers.
    pub fn put(&self, fp: Fingerprint, entry: &CachedCompile) {
        let evictions = self
            .memory
            .lock()
            .expect("cache lock")
            .0
            .put(fp, entry.clone());
        {
            let mut stats = self.stats.lock().expect("cache stats lock");
            stats.stores += 1;
            stats.evictions += evictions;
        }
        if self.disk_dir.is_some() {
            if let Err(()) = self.disk_put(fp, entry) {
                self.stats.lock().expect("cache stats lock").disk_errors += 1;
            }
        }
    }

    fn entry_path(&self, fp: Fingerprint) -> Option<PathBuf> {
        self.disk_dir
            .as_ref()
            .map(|d| d.join(format!("{}.json", fp.to_hex())))
    }

    fn disk_get(&self, fp: Fingerprint) -> Option<CachedCompile> {
        let path = self.entry_path(fp)?;
        let text = std::fs::read_to_string(&path).ok()?;
        match decode_entry(&text, fp) {
            Ok(entry) => Some(entry),
            Err(_) => {
                // Corrupt or stale: drop it so the slot recompiles clean.
                let _ = std::fs::remove_file(&path);
                self.stats.lock().expect("cache stats lock").disk_errors += 1;
                None
            }
        }
    }

    fn disk_put(&self, fp: Fingerprint, entry: &CachedCompile) -> Result<(), ()> {
        let dir = self.disk_dir.as_ref().ok_or(())?;
        std::fs::create_dir_all(dir).map_err(|_| ())?;
        let path = self.entry_path(fp).ok_or(())?;
        let text = encode_entry(fp, entry).to_compact();
        // Write-then-rename keeps concurrent readers (and crashes) from
        // ever seeing a partial entry.
        let tmp = dir.join(format!("{}.tmp.{}", fp.to_hex(), std::process::id()));
        std::fs::write(&tmp, text).map_err(|_| ())?;
        std::fs::rename(&tmp, &path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            let _ = e;
        })
    }
}

fn encode_entry(fp: Fingerprint, entry: &CachedCompile) -> Json {
    Json::obj([
        ("format", Json::num(codec::FORMAT_VERSION)),
        ("fingerprint", Json::str(fp.to_hex())),
        ("kernel", codec::encode_kernel(&entry.kernel)),
        (
            "report",
            match &entry.report {
                Some(r) => codec::encode_report(r),
                None => Json::Null,
            },
        ),
        (
            "prove",
            match entry.prove {
                Some(v) => Json::str(v.name()),
                None => Json::Null,
            },
        ),
        ("timings", codec::encode_timings(&entry.timings)),
    ])
}

fn decode_entry(text: &str, expect_fp: Fingerprint) -> Result<CachedCompile, String> {
    let v = json::parse(text).map_err(|e| e.to_string())?;
    let format = v
        .get("format")
        .and_then(Json::u64)
        .ok_or("missing format")?;
    if format != codec::FORMAT_VERSION {
        return Err(format!("format version {format}"));
    }
    let fp = v
        .get("fingerprint")
        .and_then(Json::string)
        .and_then(Fingerprint::from_hex)
        .ok_or("missing fingerprint")?;
    if fp != expect_fp {
        // A renamed or mis-filed entry; treat as corrupt.
        return Err("fingerprint mismatch".to_string());
    }
    let kernel = codec::decode_kernel(v.get("kernel").ok_or("missing kernel")?)
        .map_err(|e| e.to_string())?;
    let report = match v.get("report") {
        None | Some(Json::Null) => None,
        Some(r) => Some(codec::decode_report(r).map_err(|e| e.to_string())?),
    };
    let prove = match v.get("prove") {
        None | Some(Json::Null) => None,
        Some(p) => {
            let name = p.string().ok_or("prove verdict not a string")?;
            Some(crate::ProveVerdict::from_name(name).ok_or("unknown prove verdict")?)
        }
    };
    let timings = codec::decode_timings(v.get("timings").ok_or("missing timings")?)
        .map_err(|e| e.to_string())?;
    Ok(CachedCompile {
        kernel,
        report,
        prove,
        timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_core::{MachineConfig, SlpConfig, Strategy};

    fn entry_for(src: &str) -> (Fingerprint, CachedCompile) {
        let cfg = SlpConfig::for_machine(MachineConfig::intel_dunnington(), Strategy::Holistic);
        let p = slp_lang::compile(src).expect("compiles");
        let (kernel, timings) = slp_core::compile_timed(&p, &cfg);
        let fp = crate::fingerprint::fingerprint(src, &cfg);
        (
            fp,
            CachedCompile {
                kernel,
                report: None,
                prove: None,
                timings,
            },
        )
    }

    fn source(n: usize) -> String {
        format!("kernel k{n} {{ array A: f64[64]; for i in 0..32 {{ A[i] = A[i] + {n}.0; }} }}")
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = CompileCache::in_memory(2);
        let (fp0, e0) = entry_for(&source(0));
        let (fp1, e1) = entry_for(&source(1));
        let (fp2, e2) = entry_for(&source(2));
        cache.put(fp0, &e0);
        cache.put(fp1, &e1);
        assert!(cache.get(fp0).is_some()); // fp0 now most recent
        cache.put(fp2, &e2); // evicts fp1
        assert!(cache.get(fp1).is_none());
        assert!(cache.get(fp0).is_some());
        assert!(cache.get(fp2).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn prove_verdict_survives_the_entry_codec() {
        let (fp, mut e) = entry_for(&source(7));
        e.prove = Some(crate::ProveVerdict::Proved);
        let text = encode_entry(fp, &e).to_compact();
        let back = decode_entry(&text, fp).expect("decodes");
        assert_eq!(back.prove, Some(crate::ProveVerdict::Proved));
    }

    #[test]
    fn hit_rate_tallies() {
        let cache = CompileCache::in_memory(8);
        let (fp, e) = entry_for(&source(3));
        assert!(cache.get(fp).is_none());
        cache.put(fp, &e);
        assert!(cache.get(fp).is_some());
        assert!(cache.get(fp).is_some());
        let stats = cache.stats();
        assert_eq!(stats.lookups(), 3);
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
