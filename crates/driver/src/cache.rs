//! The content-addressed compile cache: a *sharded* in-memory LRU tier
//! plus an optional on-disk tier.
//!
//! Entries are whole compilations — the [`CompiledKernel`], the verify
//! [`Report`] (if the request asked for verification) and the original
//! compile's [`PhaseTimings`] — keyed by [`Fingerprint`]. The memory
//! tier serves repeat requests within a process (the `slpd` serve
//! loops, repeated kernels in one batch); the disk tier under
//! `.slp-cache/` makes whole corpus re-runs warm across processes,
//! which is what turns a second `slpc batch` over an unchanged tree
//! into a near-no-op.
//!
//! Concurrency design (the serve tier hammers this object from many
//! connections at once):
//!
//! * the memory tier is split into power-of-two **shards** selected by
//!   the fingerprint's low bits, each with its own lock and its own LRU
//!   order, so concurrent hits on different kernels stop serializing on
//!   one mutex. Small caches (below one shard's worth of entries) keep
//!   a single shard and therefore exact global LRU order — the
//!   capacity-2 eviction tests and tiny test caches behave as before;
//! * the running [`CacheStats`] counters are plain atomics, never a
//!   lock, so the hottest path (a memory hit) takes exactly one shard
//!   lock and touches nothing shared beyond it.
//!
//! Robustness rules:
//!
//! * a corrupt, truncated or version-mismatched disk entry is a miss —
//!   it is deleted and recompiled, never an error;
//! * disk I/O failures (permissions, full disk) degrade the cache to
//!   memory-only for that operation and are counted in
//!   [`CacheStats::disk_errors`];
//! * disk writes go through a temp file + rename, so a crashed or
//!   concurrent writer can never leave a half-written entry under the
//!   final name.
//!
//! The whole cache is internally synchronized (`&self` methods), so one
//! instance can be shared by every worker of a batch and every
//! connection of a serve session.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use slp_core::{CompiledKernel, PhaseTimings};
use slp_verify::Report;

use crate::codec;
use crate::fingerprint::Fingerprint;
use crate::json::{self, Json};

/// One cached compilation.
#[derive(Debug, Clone)]
pub struct CachedCompile {
    /// The compiled kernel.
    pub kernel: CompiledKernel,
    /// The verify report of the original compile, if verification ran.
    pub report: Option<Report>,
    /// The symbolic proof verdict, if the compile ran at
    /// [`crate::VerifyLevel::Prove`].
    pub prove: Option<crate::ProveVerdict>,
    /// Per-phase timings of the original (cold) compile.
    pub timings: PhaseTimings,
}

/// Where a cache lookup was answered from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// The in-memory LRU tier.
    Memory,
    /// The on-disk tier (the entry was promoted to memory on the way).
    Disk,
}

/// Running counters of cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the memory tier.
    pub memory_hits: u64,
    /// Lookups answered from the disk tier.
    pub disk_hits: u64,
    /// Lookups answered by neither tier.
    pub misses: u64,
    /// Entries stored.
    pub stores: u64,
    /// Memory-tier evictions (LRU overflow).
    pub evictions: u64,
    /// Disk entries dropped or skipped because of I/O or decode
    /// problems.
    pub disk_errors: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.memory_hits + self.disk_hits + self.misses
    }

    /// Hits (either tier) over lookups, in `[0, 1]`; `0` before any
    /// lookup.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            (self.memory_hits + self.disk_hits) as f64 / lookups as f64
        }
    }
}

/// Lock-free counterpart of [`CacheStats`]; snapshots are taken with
/// relaxed loads (counters are monotone, exactness only matters once
/// the writers are quiescent, which is when summaries are read).
#[derive(Default)]
struct AtomicStats {
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    evictions: AtomicU64,
    disk_errors: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> CacheStats {
        CacheStats {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            disk_errors: self.disk_errors.load(Ordering::Relaxed),
        }
    }
}

/// One shard of the memory tier: a `HashMap` plus its own LRU order.
struct MemoryShard {
    entries: HashMap<Fingerprint, CachedCompile>,
    /// LRU order, least recently used first.
    order: Vec<Fingerprint>,
    capacity: usize,
}

impl MemoryShard {
    fn touch(&mut self, fp: Fingerprint) {
        self.order.retain(|&f| f != fp);
        self.order.push(fp);
    }

    fn get(&mut self, fp: Fingerprint) -> Option<CachedCompile> {
        let entry = self.entries.get(&fp).cloned()?;
        self.touch(fp);
        Some(entry)
    }

    fn put(&mut self, fp: Fingerprint, entry: CachedCompile) -> u64 {
        self.entries.insert(fp, entry);
        self.touch(fp);
        let mut evictions = 0;
        while self.entries.len() > self.capacity && !self.order.is_empty() {
            let victim = self.order.remove(0);
            self.entries.remove(&victim);
            evictions += 1;
        }
        evictions
    }
}

/// The sharded memory tier. Shard selection uses the fingerprint's low
/// bits — fingerprints are already uniform 128-bit hashes, so no
/// re-hashing is needed.
struct MemoryTier {
    shards: Vec<Mutex<MemoryShard>>,
}

/// Entries one shard should comfortably hold before it is worth paying
/// for another lock. Caches smaller than this stay single-sharded and
/// keep exact global LRU semantics.
const SHARD_TARGET: usize = 32;

/// Upper bound on shards; past this, lock contention is no longer the
/// bottleneck for any realistic connection count.
const MAX_SHARDS: usize = 16;

fn shard_count(capacity: usize) -> usize {
    (capacity / SHARD_TARGET)
        .next_power_of_two()
        .clamp(1, MAX_SHARDS)
}

impl MemoryTier {
    fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let shards = shard_count(capacity);
        let per_shard = capacity.div_ceil(shards);
        MemoryTier {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(MemoryShard {
                        entries: HashMap::new(),
                        order: Vec::new(),
                        capacity: per_shard,
                    })
                })
                .collect(),
        }
    }

    fn shard(&self, fp: Fingerprint) -> &Mutex<MemoryShard> {
        // `shards.len()` is a power of two; the low bits of the second
        // hash stream index it uniformly.
        &self.shards[(fp.1 as usize) & (self.shards.len() - 1)]
    }

    fn get(&self, fp: Fingerprint) -> Option<CachedCompile> {
        self.shard(fp).lock().expect("cache shard lock").get(fp)
    }

    fn put(&self, fp: Fingerprint, entry: CachedCompile) -> u64 {
        self.shard(fp)
            .lock()
            .expect("cache shard lock")
            .put(fp, entry)
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").entries.len())
            .sum()
    }

    fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard lock");
            shard.entries.clear();
            shard.order.clear();
        }
    }
}

/// The two-tier compile cache. See the module docs for the design.
pub struct CompileCache {
    memory: MemoryTier,
    disk_dir: Option<PathBuf>,
    stats: AtomicStats,
}

impl std::fmt::Debug for CompileCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompileCache")
            .field("shards", &self.memory.shards.len())
            .field("entries", &self.memory.len())
            .field("disk_dir", &self.disk_dir)
            .finish()
    }
}

/// The default memory-tier capacity (entries).
pub const DEFAULT_MEMORY_CAPACITY: usize = 256;

/// The conventional on-disk cache location relative to the working
/// directory, used by the `slpc`/`slpd` front-ends.
pub const DEFAULT_DISK_DIR: &str = ".slp-cache";

impl CompileCache {
    /// A memory-only cache holding at most `capacity` entries.
    pub fn in_memory(capacity: usize) -> Self {
        CompileCache {
            memory: MemoryTier::new(capacity),
            disk_dir: None,
            stats: AtomicStats::default(),
        }
    }

    /// A two-tier cache persisting entries under `dir` (created on first
    /// store).
    pub fn with_disk(capacity: usize, dir: impl Into<PathBuf>) -> Self {
        let mut cache = CompileCache::in_memory(capacity);
        cache.disk_dir = Some(dir.into());
        cache
    }

    /// The on-disk directory, if this cache has a disk tier.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk_dir.as_deref()
    }

    /// How many shards the memory tier was split into (1 for small
    /// caches, up to 16 for serve-sized ones).
    pub fn shard_count(&self) -> usize {
        self.memory.shards.len()
    }

    /// A snapshot of the running counters.
    pub fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }

    /// Number of entries currently in the memory tier.
    pub fn memory_len(&self) -> usize {
        self.memory.len()
    }

    /// Empties the memory tier (the disk tier is untouched). Useful in
    /// tests and for bounding memory between batches.
    pub fn clear_memory(&self) {
        self.memory.clear();
    }

    /// Looks up a compilation, returning the entry and the tier that
    /// answered.
    pub fn get(&self, fp: Fingerprint) -> Option<(CachedCompile, CacheTier)> {
        if let Some(entry) = self.memory.get(fp) {
            self.stats.memory_hits.fetch_add(1, Ordering::Relaxed);
            return Some((entry, CacheTier::Memory));
        }
        if let Some(entry) = self.disk_get(fp) {
            // Promote to memory so repeat lookups stay cheap.
            self.memory.put(fp, entry.clone());
            self.stats.disk_hits.fetch_add(1, Ordering::Relaxed);
            return Some((entry, CacheTier::Disk));
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores a compilation under `fp` in both tiers.
    pub fn put(&self, fp: Fingerprint, entry: &CachedCompile) {
        let evictions = self.memory.put(fp, entry.clone());
        self.stats.stores.fetch_add(1, Ordering::Relaxed);
        self.stats.evictions.fetch_add(evictions, Ordering::Relaxed);
        if self.disk_dir.is_some() {
            if let Err(()) = self.disk_put(fp, entry) {
                self.stats.disk_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn entry_path(&self, fp: Fingerprint) -> Option<PathBuf> {
        self.disk_dir
            .as_ref()
            .map(|d| d.join(format!("{}.json", fp.to_hex())))
    }

    fn disk_get(&self, fp: Fingerprint) -> Option<CachedCompile> {
        let path = self.entry_path(fp)?;
        let text = std::fs::read_to_string(&path).ok()?;
        match decode_entry(&text, fp) {
            Ok(entry) => Some(entry),
            Err(_) => {
                // Corrupt or stale: drop it so the slot recompiles clean.
                let _ = std::fs::remove_file(&path);
                self.stats.disk_errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn disk_put(&self, fp: Fingerprint, entry: &CachedCompile) -> Result<(), ()> {
        let dir = self.disk_dir.as_ref().ok_or(())?;
        std::fs::create_dir_all(dir).map_err(|_| ())?;
        let path = self.entry_path(fp).ok_or(())?;
        let text = encode_entry(fp, entry).to_compact();
        // Write-then-rename keeps concurrent readers (and crashes) from
        // ever seeing a partial entry.
        let tmp = dir.join(format!("{}.tmp.{}", fp.to_hex(), std::process::id()));
        std::fs::write(&tmp, text).map_err(|_| ())?;
        std::fs::rename(&tmp, &path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            let _ = e;
        })
    }
}

fn encode_entry(fp: Fingerprint, entry: &CachedCompile) -> Json {
    Json::obj([
        ("format", Json::num(codec::FORMAT_VERSION)),
        ("fingerprint", Json::str(fp.to_hex())),
        ("kernel", codec::encode_kernel(&entry.kernel)),
        (
            "report",
            match &entry.report {
                Some(r) => codec::encode_report(r),
                None => Json::Null,
            },
        ),
        (
            "prove",
            match entry.prove {
                Some(v) => Json::str(v.name()),
                None => Json::Null,
            },
        ),
        ("timings", codec::encode_timings(&entry.timings)),
    ])
}

fn decode_entry(text: &str, expect_fp: Fingerprint) -> Result<CachedCompile, String> {
    let v = json::parse(text).map_err(|e| e.to_string())?;
    let format = v
        .get("format")
        .and_then(Json::u64)
        .ok_or("missing format")?;
    if format != codec::FORMAT_VERSION {
        return Err(format!("format version {format}"));
    }
    let fp = v
        .get("fingerprint")
        .and_then(Json::string)
        .and_then(Fingerprint::from_hex)
        .ok_or("missing fingerprint")?;
    if fp != expect_fp {
        // A renamed or mis-filed entry; treat as corrupt.
        return Err("fingerprint mismatch".to_string());
    }
    let kernel = codec::decode_kernel(v.get("kernel").ok_or("missing kernel")?)
        .map_err(|e| e.to_string())?;
    let report = match v.get("report") {
        None | Some(Json::Null) => None,
        Some(r) => Some(codec::decode_report(r).map_err(|e| e.to_string())?),
    };
    let prove = match v.get("prove") {
        None | Some(Json::Null) => None,
        Some(p) => {
            let name = p.string().ok_or("prove verdict not a string")?;
            Some(crate::ProveVerdict::from_name(name).ok_or("unknown prove verdict")?)
        }
    };
    let timings = codec::decode_timings(v.get("timings").ok_or("missing timings")?)
        .map_err(|e| e.to_string())?;
    Ok(CachedCompile {
        kernel,
        report,
        prove,
        timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_core::{MachineConfig, SlpConfig, Strategy};

    fn entry_for(src: &str) -> (Fingerprint, CachedCompile) {
        let cfg = SlpConfig::for_machine(MachineConfig::intel_dunnington(), Strategy::Holistic);
        let p = slp_lang::compile(src).expect("compiles");
        let (kernel, timings) = slp_core::compile_timed(&p, &cfg);
        let fp = crate::fingerprint::fingerprint(src, &cfg);
        (
            fp,
            CachedCompile {
                kernel,
                report: None,
                prove: None,
                timings,
            },
        )
    }

    fn source(n: usize) -> String {
        format!("kernel k{n} {{ array A: f64[64]; for i in 0..32 {{ A[i] = A[i] + {n}.0; }} }}")
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = CompileCache::in_memory(2);
        // Small caches must stay single-sharded so global LRU order is
        // exact.
        assert_eq!(cache.shard_count(), 1);
        let (fp0, e0) = entry_for(&source(0));
        let (fp1, e1) = entry_for(&source(1));
        let (fp2, e2) = entry_for(&source(2));
        cache.put(fp0, &e0);
        cache.put(fp1, &e1);
        assert!(cache.get(fp0).is_some()); // fp0 now most recent
        cache.put(fp2, &e2); // evicts fp1
        assert!(cache.get(fp1).is_none());
        assert!(cache.get(fp0).is_some());
        assert!(cache.get(fp2).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn prove_verdict_survives_the_entry_codec() {
        let (fp, mut e) = entry_for(&source(7));
        e.prove = Some(crate::ProveVerdict::Proved);
        let text = encode_entry(fp, &e).to_compact();
        let back = decode_entry(&text, fp).expect("decodes");
        assert_eq!(back.prove, Some(crate::ProveVerdict::Proved));
    }

    #[test]
    fn hit_rate_tallies() {
        let cache = CompileCache::in_memory(8);
        let (fp, e) = entry_for(&source(3));
        assert!(cache.get(fp).is_none());
        cache.put(fp, &e);
        assert!(cache.get(fp).is_some());
        assert!(cache.get(fp).is_some());
        let stats = cache.stats();
        assert_eq!(stats.lookups(), 3);
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn serve_sized_caches_shard() {
        assert_eq!(shard_count(2), 1);
        assert_eq!(shard_count(31), 1);
        assert_eq!(shard_count(64), 2);
        assert_eq!(shard_count(DEFAULT_MEMORY_CAPACITY), 8);
        assert_eq!(shard_count(100_000), MAX_SHARDS);
        let cache = CompileCache::in_memory(DEFAULT_MEMORY_CAPACITY);
        assert_eq!(cache.shard_count(), 8);
    }

    #[test]
    fn sharded_stats_are_exact_under_concurrent_hits() {
        let cache = CompileCache::in_memory(DEFAULT_MEMORY_CAPACITY);
        assert!(cache.shard_count() > 1);
        let keyed: Vec<(Fingerprint, CachedCompile)> =
            (0..4).map(|n| entry_for(&source(n))).collect();
        for (fp, e) in &keyed {
            cache.put(*fp, e);
        }
        const THREADS: usize = 8;
        const ROUNDS: usize = 50;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let cache = &cache;
                let keyed = &keyed;
                scope.spawn(move || {
                    for i in 0..ROUNDS {
                        let (fp, _) = &keyed[(t + i) % keyed.len()];
                        assert!(cache.get(*fp).is_some());
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.memory_hits, (THREADS * ROUNDS) as u64);
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.stores, keyed.len() as u64);
        assert_eq!(cache.memory_len(), keyed.len());
    }
}
