//! # slp-driver — the concurrent compilation driver
//!
//! The layer between front-ends and `slp-core`. Where the core pipeline
//! answers "compile this one program", this crate answers the questions
//! a production service has to: *don't compile it again if nothing
//! changed* (content-addressed caching), *compile many at once*
//! (parallel batch with panic isolation, time budgets and graceful
//! degradation), *keep answering requests* (the `slpd` serve loop) and
//! *say where the time went* (per-phase telemetry).
//!
//! The pieces:
//!
//! * [`compile_source`] — the single read→parse→validate→compile entry
//!   point every front-end shares, with an optional [`CompileCache`],
//! * [`fingerprint`] / [`Fingerprint`] — stable content-addressed cache
//!   keys over (source, config, compiler version),
//! * [`CompileCache`] — in-memory LRU + on-disk tier under
//!   `.slp-cache/`,
//! * [`compile_batch`] — shards a corpus across a scoped worker pool
//!   with deterministic output order; a panicking or over-budget kernel
//!   degrades to [`Strategy::Scalar`] instead of sinking the batch,
//! * [`DriverReport`] — machine-readable per-kernel and corpus-wide
//!   phase timings, cache counters, degradation records and (for
//!   serving sessions) the [`ServeSummary`] counters.
//!
//! The request/response *serving* layer itself — the versioned wire
//! protocol, the transport-agnostic handler with admission control,
//! request coalescing and per-tenant quotas, and the stdio/TCP
//! adapters — lives in the `slp-serve` crate (re-exported as
//! `slp::driver::{serve, serve_tcp}` by the facade); this crate
//! provides the pieces it is built from.
//!
//! ```
//! use slp_core::{MachineConfig, SlpConfig, Strategy};
//! use slp_driver::{compile_source, CompileCache, CompileRequest, VerifyLevel};
//!
//! let cache = CompileCache::in_memory(16);
//! let req = CompileRequest {
//!     name: "axpy".to_string(),
//!     source: "kernel axpy { array X: f64[64]; array Y: f64[64]; scalar a: f64;
//!              for i in 0..64 { Y[i] = Y[i] + a * X[i]; } }"
//!         .to_string(),
//!     config: SlpConfig::for_machine(MachineConfig::intel_dunnington(), Strategy::Holistic),
//!     verify: VerifyLevel::Static,
//! };
//! let cold = compile_source(&req, Some(&cache))?;
//! assert!(cold.kernel.stats.superwords > 0);
//! assert!(cold.report.as_ref().expect("verified").passes());
//! let warm = compile_source(&req, Some(&cache))?;
//! assert!(warm.cache_hit());
//! # Ok::<(), slp_driver::DriverError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
mod cache;
mod codec;
mod fingerprint;
pub mod json;
mod report;

pub use batch::{compile_batch, compile_guarded, parallel_map, BatchConfig, KernelOutcome};
pub use cache::{
    CacheStats, CacheTier, CachedCompile, CompileCache, DEFAULT_DISK_DIR, DEFAULT_MEMORY_CAPACITY,
};
pub use codec::{
    decode_kernel, decode_program, decode_report, decode_timings, encode_kernel, encode_program,
    encode_report, encode_timings, CodecError, FORMAT_VERSION,
};
pub use fingerprint::{fingerprint, fingerprint_with_tag, Fingerprint};
pub use report::{stats_json, timings_json, DriverReport, ServeSummary};

use std::time::Instant;

use slp_core::{
    compile_timed, CompiledKernel, MachineConfig, Phase, PhaseTimings, SlpConfig, Strategy,
};
use slp_verify::Report;

/// How much verification a compile request asks the driver to run over
/// the finished kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyLevel {
    /// No verification; `report` stays `None`.
    None,
    /// The static checkers (`slp_verify::verify_kernel`).
    Static,
    /// Static checkers plus differential translation validation
    /// (`slp_verify::verify_with_execution`). Executes the kernel twice;
    /// meant for checks and tests, not hot serving paths.
    Differential,
    /// Static checkers plus symbolic translation validation
    /// (`slp_verify::prove_kernel`): prove scalar ≡ vectorized over all
    /// inputs, degrading to the differential check when the proof
    /// attempt exhausts its budget. The outcome carries a
    /// [`ProveVerdict`] beside the report.
    Prove,
}

impl VerifyLevel {
    /// The stable name used in cache keys, CLI flags and the serve
    /// protocol.
    pub fn name(self) -> &'static str {
        match self {
            VerifyLevel::None => "none",
            VerifyLevel::Static => "static",
            VerifyLevel::Differential => "full",
            VerifyLevel::Prove => "prove",
        }
    }

    /// Parses [`VerifyLevel::name`] output.
    pub fn from_name(name: &str) -> Option<VerifyLevel> {
        match name {
            "none" => Some(VerifyLevel::None),
            "static" => Some(VerifyLevel::Static),
            "full" => Some(VerifyLevel::Differential),
            "prove" => Some(VerifyLevel::Prove),
            _ => None,
        }
    }
}

/// One unit of driver work: a named kernel source plus how to compile
/// and verify it.
#[derive(Debug, Clone)]
pub struct CompileRequest {
    /// Display name (usually the file stem or the kernel name).
    pub name: String,
    /// The `slp-lang` source text.
    pub source: String,
    /// The pipeline configuration.
    pub config: SlpConfig,
    /// How much verification to run on the result.
    pub verify: VerifyLevel,
}

impl CompileRequest {
    /// The request's content-addressed cache key.
    pub fn fingerprint(&self) -> Fingerprint {
        fingerprint_with_tag(&self.source, &self.config, self.verify.name())
    }
}

/// The driver's digest of a [`VerifyLevel::Prove`] proof attempt.
///
/// A three-way verdict, not `slp_tv::Verdict`'s four: the driver folds
/// the validator's `Unsupported` degradation into [`ProveVerdict::Budget`]
/// because both mean the same thing to a batch consumer — the kernel was
/// *not* proved for all inputs, but the differential check it degraded to
/// found nothing either (any differential finding shows up in the verify
/// report's error count as usual).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProveVerdict {
    /// The symbolic validator proved scalar ≡ vectorized over all inputs.
    Proved,
    /// The proof attempt ran out of budget (or hit an unsupported
    /// construct) and degraded to the differential check.
    Budget,
    /// The validator refuted equivalence with an execution-confirmed
    /// concrete counterexample; the V600 diagnostic carries it.
    Refuted,
}

impl ProveVerdict {
    /// The stable name used in reports and cache entries
    /// (`"proved"`, `"budget"`, `"refuted"`).
    pub fn name(self) -> &'static str {
        match self {
            ProveVerdict::Proved => "proved",
            ProveVerdict::Budget => "budget",
            ProveVerdict::Refuted => "refuted",
        }
    }

    /// Parses [`ProveVerdict::name`] output.
    pub fn from_name(name: &str) -> Option<ProveVerdict> {
        match name {
            "proved" => Some(ProveVerdict::Proved),
            "budget" => Some(ProveVerdict::Budget),
            "refuted" => Some(ProveVerdict::Refuted),
            _ => None,
        }
    }

    fn from_tv(verdict: &slp_tv::Verdict) -> ProveVerdict {
        match verdict {
            slp_tv::Verdict::Proved(_) => ProveVerdict::Proved,
            slp_tv::Verdict::Budget { .. } | slp_tv::Verdict::Unsupported { .. } => {
                ProveVerdict::Budget
            }
            slp_tv::Verdict::Refuted(_) => ProveVerdict::Refuted,
        }
    }
}

/// Where a compilation came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheDisposition {
    /// Compiled from scratch this call.
    Compiled,
    /// Served from the in-memory tier.
    MemoryHit,
    /// Served from the on-disk tier.
    DiskHit,
}

impl CacheDisposition {
    /// The stable name used in reports (`"compiled"`, `"memory"`,
    /// `"disk"`).
    pub fn name(self) -> &'static str {
        match self {
            CacheDisposition::Compiled => "compiled",
            CacheDisposition::MemoryHit => "memory",
            CacheDisposition::DiskHit => "disk",
        }
    }
}

/// The result of one successful driver compilation.
#[derive(Debug, Clone)]
pub struct CompileOutcome {
    /// The compiled kernel.
    pub kernel: CompiledKernel,
    /// The verify report ([`None`] iff the request's level was
    /// [`VerifyLevel::None`]). On a cache hit this is the *original*
    /// compile's report — verification is as cacheable as compilation.
    pub report: Option<Report>,
    /// The symbolic proof verdict ([`Some`] iff the request's level was
    /// [`VerifyLevel::Prove`]). Cached alongside the report.
    pub prove: Option<ProveVerdict>,
    /// Per-phase timings of the compile that produced the kernel (the
    /// cold compile's timings on a cache hit).
    pub timings: PhaseTimings,
    /// The request's cache key.
    pub fingerprint: Fingerprint,
    /// Where the kernel came from.
    pub cache: CacheDisposition,
    /// Wall nanoseconds this call spent (lookup + parse + compile +
    /// verify as applicable) — near zero on a memory hit.
    pub wall_nanos: u64,
}

impl CompileOutcome {
    /// Whether either cache tier answered.
    pub fn cache_hit(&self) -> bool {
        self.cache != CacheDisposition::Compiled
    }
}

/// Why a driver compilation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriverError {
    /// The source did not parse; the payload is the rendered diagnostic.
    Parse(String),
    /// The program parsed but failed semantic validation.
    Invalid(Vec<String>),
    /// The pipeline panicked (optimizer invariant violation or a
    /// rejecting verify hook); the payload is the panic message.
    Panic(String),
    /// The compile exceeded its time budget (milliseconds carried).
    Timeout(u64),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::Parse(msg) => write!(f, "parse error: {msg}"),
            DriverError::Invalid(errors) => {
                write!(f, "invalid program: {}", errors.join("; "))
            }
            DriverError::Panic(msg) => write!(f, "compiler panic: {msg}"),
            DriverError::Timeout(ms) => write!(f, "compile exceeded {ms} ms budget"),
        }
    }
}

impl std::error::Error for DriverError {}

/// The shared read→parse→validate→compile(→verify) entry point.
///
/// With a cache, the request's [`Fingerprint`] is looked up first and
/// the full outcome (kernel, report, cold-compile timings) is returned
/// on a hit; on a miss the result is stored in both tiers before
/// returning. Without a cache it always compiles.
///
/// This function does not isolate panics or enforce budgets — it is the
/// trusted single-kernel path (`slpc`'s default and `check`
/// subcommands). The batch and serve layers wrap it with
/// [`compile_guarded`].
///
/// # Panics
///
/// Propagates pipeline panics (invalid schedules, rejecting
/// [`SlpConfig::verify`] hooks).
pub fn compile_source(
    req: &CompileRequest,
    cache: Option<&CompileCache>,
) -> Result<CompileOutcome, DriverError> {
    let start = Instant::now();
    let fp = req.fingerprint();
    if let Some(cache) = cache {
        if let Some((entry, tier)) = cache.get(fp) {
            return Ok(CompileOutcome {
                kernel: entry.kernel,
                report: entry.report,
                prove: entry.prove,
                timings: entry.timings,
                fingerprint: fp,
                cache: match tier {
                    CacheTier::Memory => CacheDisposition::MemoryHit,
                    CacheTier::Disk => CacheDisposition::DiskHit,
                },
                wall_nanos: elapsed_nanos(start),
            });
        }
    }

    let program =
        slp_lang::compile(&req.source).map_err(|e| DriverError::Parse(e.render(&req.source)))?;
    program
        .validate()
        .map_err(|es| DriverError::Invalid(es.iter().map(|e| e.to_string()).collect()))?;

    // `Strategy::Optimal` needs a solver behind the `Packer` trait; the
    // driver installs `slp-opt`'s branch-and-bound unless the caller
    // already supplied one. The handle is excluded from the fingerprint
    // (the budgets, which do change the packing, are keyed as fields),
    // so installing it here cannot fork the cache key.
    let config;
    let config = if req.config.strategy == Strategy::Optimal && req.config.packer.is_none() {
        config = req.config.clone().with_packer(slp_opt::OptimalPacker);
        &config
    } else {
        &req.config
    };

    let (kernel, mut timings) = compile_timed(&program, config);
    let mut prove = None;
    let report = match req.verify {
        VerifyLevel::None => None,
        VerifyLevel::Static => {
            Some(timings.time(Phase::Verify, || slp_verify::verify_kernel(&kernel)))
        }
        VerifyLevel::Differential => Some(timings.time(Phase::Verify, || {
            slp_verify::verify_with_execution(&program, &kernel)
        })),
        VerifyLevel::Prove => Some(timings.time(Phase::Verify, || {
            let mut report = slp_verify::verify_kernel(&kernel);
            let (symbolic, verdict) = slp_verify::prove_kernel(&program, &kernel);
            report.extend(symbolic.diagnostics);
            prove = Some(ProveVerdict::from_tv(&verdict));
            report
        })),
    };

    if let Some(cache) = cache {
        cache.put(
            fp,
            &CachedCompile {
                kernel: kernel.clone(),
                report: report.clone(),
                prove,
                timings,
            },
        );
    }
    Ok(CompileOutcome {
        kernel,
        report,
        prove,
        timings,
        fingerprint: fp,
        cache: CacheDisposition::Compiled,
        wall_nanos: elapsed_nanos(start),
    })
}

/// Parses and certifies `source` without compiling it — the serve
/// layer's pre-compile safety gate. A kernel whose certificate proves
/// an out-of-bounds access ([`slp_core::AccessVerdict::ProvenFaulting`])
/// can be rejected with its own wire code before any packing,
/// scheduling or verification work is spent on it.
///
/// Returns `None` when the request must fall through to the normal
/// compile path instead, so that path's diagnostics keep their own wire
/// codes: sources that do not parse (`S110`), and sources with
/// validation errors *other than* provable bounds violations (`S111` —
/// duplicate ids, bad extents, out-of-scope loop variables). Provable
/// bounds violations themselves are exactly what the certificate
/// classifies, so those do get a certificate here rather than `None`.
pub fn certify_source(source: &str) -> Option<slp_core::SafetyCert> {
    let program = slp_lang::compile(source).ok()?;
    if let Err(errors) = program.validate() {
        if !errors
            .iter()
            .all(|e| matches!(e, slp_ir::ValidationError::OutOfBounds { .. }))
        {
            return None;
        }
    }
    Some(slp_core::SafetyCert::certify(&program))
}

pub(crate) fn elapsed_nanos(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Parses the CLI strategy names shared by `slpc`, `slpd` and the serve
/// protocol (`scalar`, `native` — alias `auto-adjacent` —, `slp`,
/// `global`, `optimal`) — a thin wrapper over [`Strategy`]'s `FromStr`,
/// kept for callers that want an `Option`.
pub fn parse_strategy(name: &str) -> Option<Strategy> {
    name.parse().ok()
}

/// Parses the CLI machine names shared by the front-ends (`intel`,
/// `amd`).
pub fn parse_machine(name: &str) -> Option<MachineConfig> {
    match name {
        "intel" => Some(MachineConfig::intel_dunnington()),
        "amd" => Some(MachineConfig::amd_phenom_ii()),
        _ => None,
    }
}
