//! A minimal JSON value type, writer and parser.
//!
//! The driver speaks JSON in three places — the on-disk cache tier, the
//! `--json` reports of `slpc batch`/`slpc check`, and the line-delimited
//! `slpd serve` protocol — and the build environment has no crates.io
//! access, so this module provides the small self-contained subset the
//! driver needs instead of pulling in `serde`.
//!
//! Design notes:
//!
//! * Objects preserve insertion order (a `Vec` of pairs, not a map), so
//!   serialized output is deterministic — the batch determinism tests
//!   compare encoded kernels byte for byte.
//! * Numbers are `f64`. Every integer the driver serializes (ids, counts,
//!   nanosecond timings) fits `f64` exactly below 2^53; [`Json::u64`]
//!   checks the conversion on the way out.
//! * Floats are written with Rust's shortest-roundtrip formatting, so a
//!   parse of the output restores the exact bit pattern. Non-finite
//!   values are written as the strings `"NaN"`, `"inf"` and `"-inf"`
//!   (plain JSON has no spelling for them); [`Json::f64`] converts them
//!   back.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (always an `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Wraps a string slice.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Parses a JSON document. See the module-level [`parse`].
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        parse(text)
    }

    /// Wraps an unsigned integer.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds 2^53 (not representable exactly in an
    /// `f64`); driver quantities never do.
    pub fn num(n: u64) -> Json {
        assert!(n <= (1u64 << 53), "{n} loses precision as f64");
        Json::Num(n as f64)
    }

    /// Wraps a float, spelling out non-finite values as strings.
    pub fn float(x: f64) -> Json {
        if x.is_finite() {
            Json::Num(x)
        } else if x.is_nan() {
            Json::Str("NaN".to_string())
        } else if x > 0.0 {
            Json::Str("inf".to_string())
        } else {
            Json::Str("-inf".to_string())
        }
    }

    /// Looks up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn string(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a float, converting the non-finite spellings back.
    pub fn f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Str(s) => match s.as_str() {
                "NaN" => Some(f64::NAN),
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                _ => None,
            },
            _ => None,
        }
    }

    /// The value as a non-negative integer, rejecting fractional or
    /// out-of-range numbers.
    pub fn u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && *x <= (1u64 << 53) as f64 && x.fract() == 0.0 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, rejecting fractional or out-of-range
    /// numbers.
    pub fn i64(&self) -> Option<i64> {
        match self {
            Json::Num(x)
                if x.fract() == 0.0 && *x >= -(1i64 << 53) as f64 && *x <= (1i64 << 53) as f64 =>
            {
                Some(*x as i64)
            }
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => {
                if *x == 0.0 && x.is_sign_negative() {
                    // `as i64` would drop the sign bit; "-0" reparses to
                    // -0.0 bit-exactly.
                    out.push_str("-0");
                } else if x.fract() == 0.0 && x.abs() <= (1u64 << 53) as f64 {
                    // Integral values (counts, ids, nanos) print without
                    // the ".0".
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    // {:?} is Rust's shortest representation that
                    // reparses to the same f64 — exactly what a cache
                    // format needs.
                    let _ = write!(out, "{x:?}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !pairs.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// Accepts exactly one value; trailing content (other than whitespace)
/// is an error. Errors carry the byte offset where parsing failed.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing content"));
    }
    Ok(value)
}

/// A parse failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(self.error("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(cp)
                                .ok_or_else(|| self.error("non-scalar \\u escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Consume the longest run without a quote or
                    // backslash in one step. Both delimiters are ASCII,
                    // so they can never split a multi-byte sequence and
                    // the run is validated as UTF-8 exactly once —
                    // validating the whole remaining input per character
                    // (the old code) was quadratic, which a megabyte
                    // request line turns into a denial of service.
                    let run = rest
                        .iter()
                        .position(|&b| b == b'"' || b == b'\\')
                        .unwrap_or(rest.len());
                    let s = std::str::from_utf8(&rest[..run])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos += run;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error(format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_structures() {
        let v = Json::obj([
            ("name", Json::str("kernel \"x\"\n")),
            ("n", Json::num(42)),
            (
                "xs",
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Num(-1.5)]),
            ),
            ("empty", Json::Arr(vec![])),
            ("eobj", Json::Obj(vec![])),
        ]);
        for text in [v.to_compact(), v.to_pretty()] {
            assert_eq!(parse(&text).expect("parses"), v, "{text}");
        }
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [
            0.1,
            1.0 / 3.0,
            f64::MAX,
            f64::MIN_POSITIVE,
            -2.2250738585072014e-308,
            1e300,
            -0.0,
        ] {
            let text = Json::Num(x).to_compact();
            let back = parse(&text).expect("parses").f64().expect("a number");
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
        assert!(Json::float(f64::NAN).f64().expect("NaN").is_nan());
        assert_eq!(Json::float(f64::INFINITY).f64(), Some(f64::INFINITY));
        assert_eq!(
            Json::float(f64::NEG_INFINITY).f64(),
            Some(f64::NEG_INFINITY)
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"\\q\"", "nul"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn large_strings_parse_in_linear_time() {
        // Regression: the string scanner once validated the whole
        // remaining input per character, so this 2 MiB payload took
        // minutes; linear scanning finishes instantly. Mixed escapes
        // keep the fast path honest about resuming after them.
        let s = format!("{}\"quoted\"\n{}", "x".repeat(1 << 20), "é".repeat(1 << 19));
        let text = Json::str(&s).to_compact();
        let v = parse(&text).expect("parses");
        assert_eq!(v.string(), Some(s.as_str()));
    }

    #[test]
    fn object_order_is_preserved() {
        let text = "{\"b\":1,\"a\":2}";
        let v = parse(text).expect("parses");
        assert_eq!(v.to_compact(), text);
    }

    #[test]
    fn integer_accessors_reject_lossy_values() {
        assert_eq!(Json::Num(1.5).u64(), None);
        assert_eq!(Json::Num(-1.0).u64(), None);
        assert_eq!(Json::Num(-3.0).i64(), Some(-3));
        assert_eq!(Json::Num(7.0).u64(), Some(7));
    }
}
