//! Machine-readable driver reports.
//!
//! A [`DriverReport`] digests a batch run — one row per kernel plus
//! corpus-wide aggregates (status counts, cache counters, merged
//! per-phase timings) — and renders either a human summary table or
//! JSON. Row order is the batch's deterministic input order, and the
//! JSON serialisation (insertion-ordered objects, shortest-roundtrip
//! floats) is byte-stable for identical inputs, which is what the
//! determinism tests and the CI smoke job key on.

use slp_core::{Phase, PhaseTimings};

use crate::json::Json;
use crate::{CacheStats, KernelOutcome, ProveVerdict};

/// Totals of one serving session (the stdio loop or a whole TCP
/// server's lifetime), snapshotted from the handler's atomic counters.
///
/// The counters partition cleanly: every received request is counted in
/// [`requests`](ServeSummary::requests); every *admitted* compile
/// request in [`accepted`](ServeSummary::accepted); every `ok:true`
/// compile response in [`compiled`](ServeSummary::compiled), of which
/// [`cache_hits`](ServeSummary::cache_hits) were answered by a cache
/// tier and [`coalesced`](ServeSummary::coalesced) by piggy-backing on
/// an identical in-flight compile. Every `ok:false` response counts in
/// [`errors`](ServeSummary::errors), including the typed admission
/// ([`rejected_overload`](ServeSummary::rejected_overload)) and quota
/// ([`rejected_quota`](ServeSummary::rejected_quota)) rejections.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests processed (including malformed ones).
    pub requests: u64,
    /// Compile requests admitted past quota and admission control.
    pub accepted: u64,
    /// Compile requests that produced a kernel.
    pub compiled: u64,
    /// Of those, how many either cache tier answered.
    pub cache_hits: u64,
    /// Of those, how many piggy-backed on an identical in-flight
    /// compile instead of compiling or hitting a cache tier themselves.
    pub coalesced: u64,
    /// Compile requests rejected by the in-flight admission cap.
    pub rejected_overload: u64,
    /// Compile requests rejected by a tenant's token-bucket quota.
    pub rejected_quota: u64,
    /// Compile requests rejected because the memory-safety certificate
    /// proved an access out of bounds (wire code `S114`), before any
    /// compile work was spent on them.
    pub rejected_unsafe: u64,
    /// Requests answered with `"ok": false` (every rejection and
    /// malformed request included).
    pub errors: u64,
}

impl ServeSummary {
    /// The summary as a JSON object (stable key order, used by the
    /// `stats` verb, the metrics endpoint and [`DriverReport`]).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("requests", Json::num(self.requests)),
            ("accepted", Json::num(self.accepted)),
            ("compiled", Json::num(self.compiled)),
            ("cache_hits", Json::num(self.cache_hits)),
            ("coalesced", Json::num(self.coalesced)),
            ("rejected_overload", Json::num(self.rejected_overload)),
            ("rejected_quota", Json::num(self.rejected_quota)),
            ("rejected_unsafe", Json::num(self.rejected_unsafe)),
            ("errors", Json::num(self.errors)),
        ])
    }
}

/// How one batch entry ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowStatus {
    /// Compiled (or cache-served) at the requested configuration.
    Ok,
    /// The requested configuration failed; the row carries the scalar
    /// fallback's kernel.
    Degraded,
    /// No kernel was produced at all.
    Failed,
}

impl RowStatus {
    /// The stable name used in JSON (`"ok"`, `"degraded"`, `"failed"`).
    pub fn name(self) -> &'static str {
        match self {
            RowStatus::Ok => "ok",
            RowStatus::Degraded => "degraded",
            RowStatus::Failed => "failed",
        }
    }
}

/// One kernel's line in a [`DriverReport`].
#[derive(Debug, Clone)]
pub struct KernelRow {
    /// The kernel's display name.
    pub name: String,
    /// The entry's verdict.
    pub status: RowStatus,
    /// Where the kernel came from (`"compiled"`, `"memory"`, `"disk"`);
    /// `None` when the entry failed.
    pub cache: Option<&'static str>,
    /// The request's cache key (the fallback's key for degraded rows);
    /// `None` when the entry failed.
    pub fingerprint: Option<String>,
    /// Statements after unrolling.
    pub stmts: usize,
    /// Superword statements emitted.
    pub superwords: usize,
    /// Statements covered by superwords.
    pub vectorized_stmts: usize,
    /// False dependences disproved by the range-refined oracle (0 unless
    /// the request enabled `refine_deps`).
    pub deps_refuted: usize,
    /// Array accesses the memory-safety certificate proved in bounds.
    pub accesses_proven_safe: usize,
    /// Array accesses the certificate could not classify.
    pub accesses_unknown: usize,
    /// Array accesses proven to fault (the kernel carries a V505 error).
    pub accesses_proven_faulting: usize,
    /// The symbolic proof verdict; `None` unless the batch ran at
    /// [`crate::VerifyLevel::Prove`].
    pub prove: Option<ProveVerdict>,
    /// Branch-and-bound nodes the packing solver expanded (0 unless the
    /// request ran [`slp_core::Strategy::Optimal`]).
    pub opt_nodes: u64,
    /// The solver's proven optimality gap in parts per million of the
    /// shipped cost (0 = proven optimal), same caveat.
    pub opt_gap_ppm: u64,
    /// Whether a solver budget expired before the search exhausted,
    /// same caveat.
    pub opt_degraded: bool,
    /// Error-severity verify findings; `None` when verification was not
    /// requested or the entry failed.
    pub verify_errors: Option<usize>,
    /// Warning-severity verify findings, same caveats.
    pub verify_warnings: Option<usize>,
    /// Rendered verify diagnostics.
    pub diagnostics: Vec<String>,
    /// The failure (for failed rows) or the original failure that forced
    /// degradation (for degraded rows).
    pub error: Option<String>,
    /// Per-phase timings of the compile that produced the kernel.
    pub timings: PhaseTimings,
    /// Wall nanoseconds the driver spent on this entry.
    pub wall_nanos: u64,
}

/// The aggregated, machine-readable result of a batch run.
#[derive(Debug, Clone)]
pub struct DriverReport {
    /// One row per request, in input order.
    pub rows: Vec<KernelRow>,
    /// Sum of every row's per-phase timings.
    pub phase_totals: PhaseTimings,
    /// Wall nanoseconds of the whole batch (caller-measured; covers the
    /// parallel region, so it is far less than the sum of row times).
    pub wall_nanos: u64,
    /// The cache's counters after the run, when a cache was used.
    pub cache: Option<CacheStats>,
    /// Serve-session counters, when the report describes a serving
    /// session rather than a one-shot batch (see
    /// [`DriverReport::with_serve`]).
    pub serve: Option<ServeSummary>,
}

impl DriverReport {
    /// Digests batch outcomes into a report.
    pub fn from_outcomes(
        outcomes: &[KernelOutcome],
        wall_nanos: u64,
        cache: Option<CacheStats>,
    ) -> Self {
        let mut rows = Vec::with_capacity(outcomes.len());
        let mut phase_totals = PhaseTimings::new();
        for outcome in outcomes {
            let row = match &outcome.result {
                Ok(compiled) => {
                    phase_totals.merge(&compiled.timings);
                    let (verify_errors, verify_warnings, diagnostics) = match &compiled.report {
                        Some(report) => (
                            Some(report.error_count()),
                            Some(report.warning_count()),
                            report.diagnostics.iter().map(|d| d.to_string()).collect(),
                        ),
                        None => (None, None, Vec::new()),
                    };
                    KernelRow {
                        name: outcome.name.clone(),
                        status: if outcome.degraded.is_some() {
                            RowStatus::Degraded
                        } else {
                            RowStatus::Ok
                        },
                        cache: Some(compiled.cache.name()),
                        fingerprint: Some(compiled.fingerprint.to_hex()),
                        stmts: compiled.kernel.stats.stmts,
                        superwords: compiled.kernel.stats.superwords,
                        vectorized_stmts: compiled.kernel.stats.vectorized_stmts,
                        deps_refuted: compiled.kernel.stats.deps_refuted,
                        accesses_proven_safe: compiled.kernel.stats.accesses_proven_safe,
                        accesses_unknown: compiled.kernel.stats.accesses_unknown,
                        accesses_proven_faulting: compiled.kernel.stats.accesses_proven_faulting,
                        prove: compiled.prove,
                        opt_nodes: compiled.kernel.stats.opt_nodes,
                        opt_gap_ppm: compiled.kernel.stats.opt_gap_ppm,
                        opt_degraded: compiled.kernel.stats.opt_degraded,
                        verify_errors,
                        verify_warnings,
                        diagnostics,
                        error: outcome.degraded.clone(),
                        timings: compiled.timings,
                        wall_nanos: compiled.wall_nanos,
                    }
                }
                Err(err) => KernelRow {
                    name: outcome.name.clone(),
                    status: RowStatus::Failed,
                    cache: None,
                    fingerprint: None,
                    stmts: 0,
                    superwords: 0,
                    vectorized_stmts: 0,
                    deps_refuted: 0,
                    accesses_proven_safe: 0,
                    accesses_unknown: 0,
                    accesses_proven_faulting: 0,
                    prove: None,
                    opt_nodes: 0,
                    opt_gap_ppm: 0,
                    opt_degraded: false,
                    verify_errors: None,
                    verify_warnings: None,
                    diagnostics: Vec::new(),
                    error: Some(err.to_string()),
                    timings: PhaseTimings::new(),
                    wall_nanos: 0,
                },
            };
            rows.push(row);
        }
        DriverReport {
            rows,
            phase_totals,
            wall_nanos,
            cache,
            serve: None,
        }
    }

    /// Attaches serve-session counters (the TCP/stdio front-ends thread
    /// their [`ServeSummary`] through here so one report type carries
    /// batch and serve telemetry alike).
    pub fn with_serve(mut self, serve: ServeSummary) -> Self {
        self.serve = Some(serve);
        self
    }

    /// Rows that compiled at the requested configuration.
    pub fn ok_count(&self) -> usize {
        self.count(RowStatus::Ok)
    }

    /// Rows that fell back to scalar.
    pub fn degraded_count(&self) -> usize {
        self.count(RowStatus::Degraded)
    }

    /// Rows that produced no kernel.
    pub fn failed_count(&self) -> usize {
        self.count(RowStatus::Failed)
    }

    fn count(&self, status: RowStatus) -> usize {
        self.rows.iter().filter(|r| r.status == status).count()
    }

    /// Error-severity verify findings summed over all rows.
    pub fn verify_error_count(&self) -> usize {
        self.rows.iter().filter_map(|r| r.verify_errors).sum()
    }

    /// Range-refined dependence disproofs summed over all rows.
    pub fn deps_refuted_count(&self) -> usize {
        self.rows.iter().map(|r| r.deps_refuted).sum()
    }

    /// Certificate verdict totals summed over all rows:
    /// `(proven_safe, unknown, proven_faulting)`.
    pub fn access_verdict_counts(&self) -> (usize, usize, usize) {
        self.rows.iter().fold((0, 0, 0), |(s, u, f), r| {
            (
                s + r.accesses_proven_safe,
                u + r.accesses_unknown,
                f + r.accesses_proven_faulting,
            )
        })
    }

    /// Rows whose proof attempt ended with the given verdict.
    pub fn prove_count(&self, verdict: ProveVerdict) -> usize {
        self.rows
            .iter()
            .filter(|r| r.prove == Some(verdict))
            .count()
    }

    /// Whether every row is `ok` and no verify checker found an error —
    /// the CI smoke job's pass condition.
    pub fn all_clean(&self) -> bool {
        self.degraded_count() == 0 && self.failed_count() == 0 && self.verify_error_count() == 0
    }

    /// The full report as JSON (deterministic key order).
    pub fn to_json(&self) -> Json {
        let mut kernels = Vec::with_capacity(self.rows.len());
        for row in &self.rows {
            let mut fields = vec![
                ("name", Json::str(&row.name)),
                ("status", Json::str(row.status.name())),
                ("cache", row.cache.map_or(Json::Null, Json::str)),
                (
                    "fingerprint",
                    row.fingerprint.as_deref().map_or(Json::Null, Json::str),
                ),
                ("stmts", Json::num(row.stmts as u64)),
                ("superwords", Json::num(row.superwords as u64)),
                ("vectorized_stmts", Json::num(row.vectorized_stmts as u64)),
                ("deps_refuted", Json::num(row.deps_refuted as u64)),
                (
                    "accesses_proven_safe",
                    Json::num(row.accesses_proven_safe as u64),
                ),
                ("accesses_unknown", Json::num(row.accesses_unknown as u64)),
                (
                    "accesses_proven_faulting",
                    Json::num(row.accesses_proven_faulting as u64),
                ),
                (
                    "prove",
                    row.prove.map_or(Json::Null, |v| Json::str(v.name())),
                ),
                ("opt_nodes", Json::num(row.opt_nodes)),
                ("opt_gap_ppm", Json::num(row.opt_gap_ppm)),
                ("opt_degraded", Json::Bool(row.opt_degraded)),
            ];
            fields.push((
                "verify_errors",
                row.verify_errors
                    .map_or(Json::Null, |n| Json::num(n as u64)),
            ));
            fields.push((
                "verify_warnings",
                row.verify_warnings
                    .map_or(Json::Null, |n| Json::num(n as u64)),
            ));
            fields.push((
                "diagnostics",
                Json::Arr(row.diagnostics.iter().map(Json::str).collect()),
            ));
            fields.push(("error", row.error.as_deref().map_or(Json::Null, Json::str)));
            fields.push(("phase_nanos", timings_json(&row.timings)));
            fields.push(("wall_nanos", Json::num(row.wall_nanos)));
            kernels.push(Json::obj(fields));
        }

        let mut fields = vec![
            ("kernels", Json::num(self.rows.len() as u64)),
            ("ok", Json::num(self.ok_count() as u64)),
            ("degraded", Json::num(self.degraded_count() as u64)),
            ("failed", Json::num(self.failed_count() as u64)),
            ("verify_errors", Json::num(self.verify_error_count() as u64)),
            ("deps_refuted", Json::num(self.deps_refuted_count() as u64)),
            ("accesses", {
                let (safe, unknown, faulting) = self.access_verdict_counts();
                Json::obj([
                    ("proven_safe", Json::num(safe as u64)),
                    ("unknown", Json::num(unknown as u64)),
                    ("proven_faulting", Json::num(faulting as u64)),
                ])
            }),
            (
                "prove",
                Json::obj([
                    (
                        "proved",
                        Json::num(self.prove_count(ProveVerdict::Proved) as u64),
                    ),
                    (
                        "budget",
                        Json::num(self.prove_count(ProveVerdict::Budget) as u64),
                    ),
                    (
                        "refuted",
                        Json::num(self.prove_count(ProveVerdict::Refuted) as u64),
                    ),
                ]),
            ),
            ("wall_nanos", Json::num(self.wall_nanos)),
            ("phase_nanos", timings_json(&self.phase_totals)),
        ];
        if let Some(stats) = &self.cache {
            fields.push(("cache", stats_json(stats)));
        }
        if let Some(serve) = &self.serve {
            fields.push(("serve", serve.to_json()));
        }
        fields.push(("rows", Json::Arr(kernels)));
        Json::obj(fields)
    }

    /// A fixed-width human summary — one line per kernel plus totals.
    pub fn summary_table(&self) -> String {
        let name_width = self
            .rows
            .iter()
            .map(|r| r.name.len())
            .max()
            .unwrap_or(6)
            .max(6);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<name_width$}  {:<8}  {:<8}  {:>5}  {:>9}  {:>6}  {:>9}\n",
            "kernel", "status", "cache", "sw", "vec/stmts", "verify", "time"
        ));
        for row in &self.rows {
            // A proof verdict is strictly more informative than pass/fail,
            // so it takes over the verify column when present.
            let verify = match (row.prove, row.verify_errors) {
                (Some(v), _) => v.name().to_string(),
                (None, None) => "-".to_string(),
                (None, Some(0)) => "pass".to_string(),
                (None, Some(n)) => format!("{n} err"),
            };
            out.push_str(&format!(
                "{:<name_width$}  {:<8}  {:<8}  {:>5}  {:>9}  {:>6}  {:>9}\n",
                row.name,
                row.status.name(),
                row.cache.unwrap_or("-"),
                row.superwords,
                format!("{}/{}", row.vectorized_stmts, row.stmts),
                verify,
                millis(row.wall_nanos),
            ));
        }
        out.push_str(&format!(
            "{} kernels: {} ok, {} degraded, {} failed in {}\n",
            self.rows.len(),
            self.ok_count(),
            self.degraded_count(),
            self.failed_count(),
            millis(self.wall_nanos),
        ));
        if self.rows.iter().any(|r| r.prove.is_some()) {
            out.push_str(&format!(
                "proofs: {} proved, {} degraded to differential, {} refuted\n",
                self.prove_count(ProveVerdict::Proved),
                self.prove_count(ProveVerdict::Budget),
                self.prove_count(ProveVerdict::Refuted),
            ));
        }
        if self.rows.iter().any(|r| r.opt_nodes > 0 || r.opt_degraded) {
            let proven = self
                .rows
                .iter()
                .filter(|r| r.opt_nodes > 0 && r.opt_gap_ppm == 0 && !r.opt_degraded)
                .count();
            let degraded = self.rows.iter().filter(|r| r.opt_degraded).count();
            let nodes: u64 = self.rows.iter().map(|r| r.opt_nodes).sum();
            out.push_str(&format!(
                "optimal: {proven} proven optimal, {degraded} hit the solver budget, {nodes} nodes\n",
            ));
        }
        let refuted = self.deps_refuted_count();
        if refuted > 0 {
            out.push_str(&format!(
                "refined dependence tests removed {refuted} false dependence{}\n",
                if refuted == 1 { "" } else { "s" }
            ));
        }
        let (safe, unknown, faulting) = self.access_verdict_counts();
        if safe + unknown + faulting > 0 {
            out.push_str(&format!(
                "safety: {safe} accesses proven safe, {unknown} unknown, {faulting} proven faulting\n",
            ));
        }
        if let Some(serve) = &self.serve {
            out.push_str(&format!(
                "serve: {} requests, {} accepted, {} compiled ({} cache hits, \
                 {} coalesced), {} rejected (overload {}, quota {}, unsafe {}), {} errors\n",
                serve.requests,
                serve.accepted,
                serve.compiled,
                serve.cache_hits,
                serve.coalesced,
                serve.rejected_overload + serve.rejected_quota + serve.rejected_unsafe,
                serve.rejected_overload,
                serve.rejected_quota,
                serve.rejected_unsafe,
                serve.errors,
            ));
        }
        if let Some(stats) = &self.cache {
            out.push_str(&format!(
                "cache: {} memory + {} disk hits / {} lookups ({:.1}% hit rate)\n",
                stats.memory_hits,
                stats.disk_hits,
                stats.lookups(),
                stats.hit_rate() * 100.0,
            ));
        }
        let phases: Vec<String> = Phase::ALL
            .iter()
            .map(|&p| format!("{p} {}", millis(self.phase_totals.nanos(p))))
            .collect();
        out.push_str(&format!("phases: {}\n", phases.join(" | ")));
        out
    }
}

fn millis(nanos: u64) -> String {
    format!("{:.2}ms", nanos as f64 / 1.0e6)
}

/// Phase timings as a `{"unroll": nanos, ...}` object — the shared
/// serialization used by batch reports, the serve protocol and the
/// metrics endpoint.
pub fn timings_json(timings: &PhaseTimings) -> Json {
    Json::obj(
        Phase::ALL
            .iter()
            .map(|&p| (p.name(), Json::num(timings.nanos(p))))
            .collect::<Vec<_>>(),
    )
}

/// Cache counters as JSON — shared by batch reports and the serve
/// protocol's `stats` verb.
pub fn stats_json(stats: &CacheStats) -> Json {
    Json::obj(vec![
        ("memory_hits", Json::num(stats.memory_hits)),
        ("disk_hits", Json::num(stats.disk_hits)),
        ("misses", Json::num(stats.misses)),
        ("stores", Json::num(stats.stores)),
        ("evictions", Json::num(stats.evictions)),
        ("disk_errors", Json::num(stats.disk_errors)),
        ("hit_rate", Json::float(stats.hit_rate())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_counters_thread_through_the_report() {
        let summary = ServeSummary {
            requests: 10,
            accepted: 7,
            compiled: 6,
            cache_hits: 3,
            coalesced: 2,
            rejected_overload: 1,
            rejected_quota: 2,
            rejected_unsafe: 1,
            errors: 4,
        };
        let report = DriverReport::from_outcomes(&[], 0, None).with_serve(summary);
        let json = report.to_json();
        let serve = json.get("serve").expect("serve object present");
        assert_eq!(serve.get("requests").and_then(Json::u64), Some(10));
        assert_eq!(serve.get("coalesced").and_then(Json::u64), Some(2));
        assert_eq!(serve.get("rejected_quota").and_then(Json::u64), Some(2));
        let table = report.summary_table();
        assert!(table.contains("serve: 10 requests"), "table: {table}");
        // A plain batch report carries no serve section.
        let plain = DriverReport::from_outcomes(&[], 0, None);
        assert!(plain.to_json().get("serve").is_none());
    }
}
