//! The paper's §6 running example (Figures 2 and 15), end to end.
//!
//! The example basic block has eight statements with three superword
//! reuse opportunities (<d,g>, <c,h>, <a,r>) that the original SLP
//! algorithm's greedy seed-and-extend misses but the holistic grouping
//! captures. This walkthrough shows each framework stage: the grouping
//! decisions with their reuse weights, the final schedules, and the
//! measured cycle difference.
//!
//! ```text
//! cargo run --example figure15
//! ```

use slp::core::{baseline_block, group_block, schedule_block, ScheduleConfig};
use slp::ir::BlockDeps;
use slp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 15 (a): the original input code, one unrolled iteration.
    let source = "kernel fig15 {
        const N = 64;
        array A: f64[2*N+6];
        array B: f64[4*N+8];
        scalar a, b, c, d, g, h, q, r: f64;
        for i in 1..N {
            a = A[i];
            b = A[i+1];
            c = a * B[4*i];
            d = b * B[4*i+4];
            g = q * B[4*i-2];
            h = r * B[4*i+2];
            A[2*i] = d + a * c;
            A[2*i+2] = g + r * h;
        }
    }";
    let program = slp::lang::compile(source)?;
    let machine = MachineConfig::intel_dunnington();

    // Work on the loop body block directly (no unrolling, to match the
    // paper's presentation).
    let info = &program.blocks()[0];
    let deps = BlockDeps::analyze(&info.block);
    let lanes = |_s| 2usize; // two f64 lanes on the 128-bit datapath

    println!("== input basic block (Figure 15 a) ==");
    for s in info.block.iter() {
        println!("  {}", program.show_stmt(s));
    }

    // The baseline SLP algorithm (Figure 15 b).
    let slp_sched = baseline_block(&info.block, &deps, &program, lanes);
    println!("\n== baseline SLP schedule (Figure 15 b) ==");
    for item in slp_sched.items() {
        println!("  {item}");
    }

    // The holistic grouping (Figure 15 c) with its decision trace.
    let grouping = group_block(&info.block, &deps, &program, lanes);
    println!("\n== holistic grouping decisions ==");
    for d in &grouping.decisions {
        let names: Vec<String> = d
            .stmts
            .iter()
            .map(|s| program.show_stmt(info.block.stmt(*s).expect("stmt")))
            .collect();
        println!(
            "  w={:.2} round {}: {{{}}}",
            d.weight,
            d.round,
            names.join(" | ")
        );
    }
    let global_sched = schedule_block(
        &info.block,
        &deps,
        &grouping.units,
        &ScheduleConfig::default(),
    );
    println!("\n== holistic schedule (Figure 15 c) ==");
    for item in global_sched.items() {
        println!("  {item}");
    }

    // Measured end-to-end (with the full pipeline, unrolling included).
    println!("\n== measured (whole kernel, Intel machine) ==");
    let scalar = execute(
        &compile(
            &program,
            &SlpConfig::for_machine(machine.clone(), Strategy::Scalar),
        ),
        &machine,
    )?;
    for (label, strategy, layout) in [
        ("SLP", Strategy::Baseline, false),
        ("Global", Strategy::Holistic, false),
        ("Global+Layout (Figure 15 d)", Strategy::Holistic, true),
    ] {
        let mut cfg = SlpConfig::for_machine(machine.clone(), strategy);
        if layout {
            cfg = cfg.with_layout();
        }
        let out = execute(&compile(&program, &cfg), &machine)?;
        assert!(out.state.arrays_bitwise_eq(&scalar.state, 2));
        println!(
            "  {:<28} {:>9.0} cycles ({:+.1}% vs scalar)",
            label,
            out.stats.metrics.cycles,
            (out.stats.metrics.cycles / scalar.stats.metrics.cycles - 1.0) * 100.0,
        );
    }
    Ok(())
}
