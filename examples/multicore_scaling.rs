//! The Figure 21 multicore model: project single-core measurements of a
//! NAS kernel onto 1–12 cores of the Dunnington machine.
//!
//! ```text
//! cargo run --release --example multicore_scaling [kernel]
//! ```

use slp::prelude::*;
use slp::suite::spec_of;
use slp::vm::{reduction_percent, MulticoreModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "mg".into());
    let spec = spec_of(&name).ok_or("unknown benchmark")?;
    let program = slp::suite::kernel(&name, 8);
    let machine = MachineConfig::intel_dunnington();

    let run = |strategy: Strategy| -> Result<_, Box<dyn std::error::Error>> {
        let kernel = compile(&program, &SlpConfig::for_machine(machine.clone(), strategy));
        Ok(execute(&kernel, &machine)?.stats)
    };
    let scalar = run(Strategy::Scalar)?;
    let global = run(Strategy::Holistic)?;

    let model = MulticoreModel::with_serial_fraction(spec.serial_fraction);
    println!(
        "{name}: serial fraction {:.0}%, single-core Global reduction {:.1}%",
        spec.serial_fraction * 100.0,
        reduction_percent(&scalar, &global, 1, &model),
    );
    println!(
        "{:<8} {:>14} {:>14} {:>12}",
        "cores", "scalar (ms)", "Global (ms)", "reduction"
    );
    for cores in [1usize, 2, 4, 6, 8, 10, 12] {
        let ts = model.seconds(&scalar, cores, &machine) * 1e3;
        let tg = model.seconds(&global, cores, &machine) * 1e3;
        println!(
            "{cores:<8} {ts:>14.4} {tg:>14.4} {:>11.1}%",
            reduction_percent(&scalar, &global, cores, &model)
        );
    }
    Ok(())
}
