//! The two evaluation machines (Tables 1–2) and the Figure 18 datapath
//! sweep on one kernel.
//!
//! ```text
//! cargo run --example machine_comparison
//! ```

use slp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = slp::suite::kernel("milc", 1);

    for machine in [
        MachineConfig::intel_dunnington(),
        MachineConfig::amd_phenom_ii(),
    ] {
        let scalar = execute(
            &compile(
                &program,
                &SlpConfig::for_machine(machine.clone(), Strategy::Scalar),
            ),
            &machine,
        )?;
        let global = execute(
            &compile(
                &program,
                &SlpConfig::for_machine(machine.clone(), Strategy::Holistic),
            ),
            &machine,
        )?;
        println!(
            "{:<28} Global reduction {:>5.1}%  ({:.2} ms simulated scalar time)",
            machine.name,
            (1.0 - global.stats.metrics.cycles / scalar.stats.metrics.cycles) * 100.0,
            scalar.stats.seconds(&machine) * 1e3,
        );
    }

    println!("\nFigure 18 flavour: widening the (hypothetical) datapath");
    // A lighter kernel keeps the 16-lane compile fast in debug builds.
    let sweep_kernel = slp::suite::kernel("lbm", 1);
    let base = MachineConfig::intel_dunnington();
    for bits in [128u32, 256, 512, 1024] {
        let machine = base.with_datapath_bits(bits);
        let scalar = execute(
            &compile(
                &sweep_kernel,
                &SlpConfig::for_machine(machine.clone(), Strategy::Scalar),
            ),
            &machine,
        )?;
        let global = execute(
            &compile(
                &sweep_kernel,
                &SlpConfig::for_machine(machine.clone(), Strategy::Holistic),
            ),
            &machine,
        )?;
        let dyn_elim = 1.0
            - global.stats.metrics.dynamic_instructions as f64
                / scalar.stats.metrics.dynamic_instructions as f64;
        println!(
            "  {bits:>5}-bit datapath: {:>4} f64 lanes, {:>5.1}% of dynamic instructions eliminated",
            machine.lanes_for(slp::ir::ScalarType::F64),
            dyn_elim * 100.0,
        );
    }
    Ok(())
}
