//! Quickstart: write a kernel, vectorize it four ways, compare.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use slp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A kernel in the slp-lang mini-language: a fused multiply-add
    //    stream the paper's machinery vectorizes end to end.
    let source = "kernel saxpy_like {
        const N = 256;
        array X: f64[N];
        array Y: f64[N];
        array Z: f64[N];
        scalar a: f64;
        for i in 0..N {
            Z[i] = Y[i] + a * X[i];
        }
    }";
    let program = slp::lang::compile(source)?;
    println!("kernel:\n{program}");

    // 2. The evaluation machine of the paper's Table 1.
    let machine = MachineConfig::intel_dunnington();

    // 3. Compile and run under each scheme; all runs must agree bit for
    //    bit with the scalar run.
    let scalar_cfg = SlpConfig::for_machine(machine.clone(), Strategy::Scalar);
    let scalar = execute(&compile(&program, &scalar_cfg), &machine)?;

    println!(
        "{:<16} {:>12} {:>10} {:>12} {:>10}",
        "scheme", "cycles", "reduction", "memory ops", "pack ops"
    );
    for (label, strategy, layout) in [
        ("scalar", Strategy::Scalar, false),
        ("Native", Strategy::Native, false),
        ("SLP", Strategy::Baseline, false),
        ("Global", Strategy::Holistic, false),
        ("Global+Layout", Strategy::Holistic, true),
    ] {
        let mut cfg = SlpConfig::for_machine(machine.clone(), strategy);
        if layout {
            cfg = cfg.with_layout();
        }
        let kernel = compile(&program, &cfg);
        let outcome = execute(&kernel, &machine)?;
        assert!(
            outcome
                .state
                .arrays_bitwise_eq(&scalar.state, program.arrays().len()),
            "{label} changed the program's results!"
        );
        let m = &outcome.stats.metrics;
        println!(
            "{:<16} {:>12.0} {:>9.1}% {:>12} {:>10}",
            label,
            m.cycles,
            (1.0 - m.cycles / scalar.stats.metrics.cycles) * 100.0,
            m.memory_ops,
            m.packing_ops,
        );
    }
    Ok(())
}
