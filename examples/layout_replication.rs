//! §5.2 data layout optimization (Figures 13–14): strided read-only
//! packs are replicated into an interleaved array so each pack becomes
//! one aligned vector load.
//!
//! ```text
//! cargo run --example layout_replication
//! ```

use slp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Figure 13 pattern: a superword <A[4i], A[4i+3]> re-read by an
    // enclosing sweep. Without layout optimization each iteration
    // gathers two strided elements; with it, lane p of iteration i reads
    // the fresh array at 2i + p (Eq. 4).
    let source = "kernel fig13 {
        const N = 128;
        array A: f64[4*N+4];
        array OUT: f64[2*N];
        scalar x, y: f64;
        for sweep in 0..8 {
            for i in 0..N {
                x = A[4*i] * 1.1;
                y = A[4*i+3] * 1.1;
                OUT[2*i] = x + 0.5;
                OUT[2*i+1] = y + 0.5;
            }
        }
    }";
    let program = slp::lang::compile(source)?;
    let machine = MachineConfig::intel_dunnington();

    let scalar = execute(
        &compile(
            &program,
            &SlpConfig::for_machine(machine.clone(), Strategy::Scalar),
        ),
        &machine,
    )?;
    let global_cfg = SlpConfig::for_machine(machine.clone(), Strategy::Holistic);
    let global = execute(&compile(&program, &global_cfg), &machine)?;
    let layout_kernel = compile(&program, &global_cfg.clone().with_layout());
    let layout = execute(&layout_kernel, &machine)?;

    println!(
        "replications committed: {}",
        layout_kernel.replications.len()
    );
    for r in &layout_kernel.replications {
        println!(
            "  {} -> {}: {} lanes, {} one-time copies",
            layout_kernel.program.array(r.source).name,
            layout_kernel.program.array(r.dest).name,
            r.lanes.len(),
            r.copy_count(),
        );
        for (p, expr) in r.dest_exprs.iter().enumerate() {
            println!(
                "    lane {p} now reads {}[{expr}]",
                layout_kernel.program.array(r.dest).name
            );
        }
    }

    // Eq. (4) in isolation: (d - b) / a * L + p.
    println!("\nEq. (4) spot checks for <A[4i], A[4i+3]> (L = 2):");
    for (d, lane, b) in [(0i64, 0i64, 0i64), (4, 0, 0), (3, 1, 3), (7, 1, 3)] {
        println!("  A[{d}] -> B[{}]", slp::core::eq4_map(d, 4, b, 2, lane));
    }

    assert!(global.state.arrays_bitwise_eq(&scalar.state, 2));
    assert!(layout.state.arrays_bitwise_eq(&scalar.state, 2));
    println!(
        "\ncycles: scalar {:.0}, Global {:.0}, Global+Layout {:.0}",
        scalar.stats.metrics.cycles, global.stats.metrics.cycles, layout.stats.metrics.cycles,
    );
    println!(
        "layout saves an extra {:.1}% over Global",
        (1.0 - layout.stats.metrics.cycles / global.stats.metrics.cycles) * 100.0
    );
    Ok(())
}
