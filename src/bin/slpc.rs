//! `slpc` — the command-line driver for the SLP framework.
//!
//! ```text
//! slpc <kernel.slp> [options]
//!
//! options:
//!   --strategy scalar|native (alias: auto-adjacent)|slp|global|optimal
//!                                         optimizer (default: global)
//!   --layout                              enable the §5 data layout stage
//!   --machine intel|amd                   cost model (default: intel)
//!   --emit source|schedule|code|stats     what to print (default: stats)
//!   --run                                 execute and print counters
//!   --no-unchecked                        keep every bounds check at runtime,
//!                                         ignoring the memory-safety certificate
//!   --unroll N                            unroll factor (default: auto)
//!   --refine                              range-refined dependence testing
//!
//! slpc analyze <kernel.slp>... [options]
//!
//! Runs the slp-analyze whole-program dataflow lints (V500 use before
//! def, V501 dead store, V502 provably out-of-bounds subscript, V503
//! misalignment risk, V504 dead loop, V507 dead array store — a cell
//! written but never read nor live-out) over each kernel's source program
//! and prints the inferred scalar value ranges. Purely static: nothing
//! is executed. With `--json`, each kernel row also carries
//! `deps_refuted` — how many false dependences the range-refined oracle
//! disproves for a refined Holistic compile of that kernel.
//!
//! options:
//!   --machine intel|amd                   echoed in the report header
//!   --json                                machine-readable report
//!
//! slpc check <kernel.slp>... [options]
//!
//! Compiles each kernel under every vectorizing configuration (Native,
//! SLP, Global, Global+Layout, Optimal) and runs the slp-verify checkers
//! over the
//! output: dependence preservation, pack legality, layout soundness,
//! memory-safety certification (V505 proven out-of-bounds is a hard
//! error, V506 unproven-access warnings), and differential translation
//! validation against the scalar build.
//!
//! options:
//!   --machine intel|amd                   cost model (default: intel)
//!   --static                              skip the differential execution
//!   --unroll N                            unroll factor (default: auto)
//!   --refine                              range-refined dependence testing
//!   --json                                machine-readable report
//!
//! slpc prove <kernel.slp>... [options]
//!
//! Compiles each kernel under every vectorizing configuration and runs
//! the symbolic translation validator (slp-tv) over the output: proves
//! scalar ≡ vectorized over *all* inputs by hash-consed value-graph
//! comparison. Per configuration the verdict is `proved`, `budget` (the
//! proof degraded to the differential check) or `refuted` (an
//! execution-confirmed counterexample exists; details in the V600
//! diagnostic).
//!
//! options:
//!   --machine intel|amd                   cost model (default: intel)
//!   --unroll N                            unroll factor (default: auto)
//!   --refine                              range-refined dependence testing
//!   --json                                machine-readable report
//!
//! slpc batch <dir|manifest|kernel.slp>... [options]
//!
//! Compiles a corpus across a worker pool with content-addressed
//! caching (memory + `.slp-cache/` disk tier), per-kernel panic
//! isolation and time budgets, and graceful degradation to scalar. A
//! directory contributes its `*.slp` files (sorted); a non-`.slp` file
//! is a manifest listing one kernel path per line (`#` comments).
//!
//! options:
//!   --strategy scalar|native (alias: auto-adjacent)|slp|global|optimal
//!                                         optimizer (default: global)
//!   --layout                              enable the data layout stage
//!   --machine intel|amd                   cost model (default: intel)
//!   --unroll N                            unroll factor (default: auto)
//!   --refine                              range-refined dependence testing
//!   --verify none|static|full|prove       verification level (default: static)
//!   --prove                               shorthand for --verify prove
//!   --threads N                           worker threads (default: cores)
//!   --budget-ms N                         per-kernel compile budget
//!   --no-degrade                          fail entries instead of scalar fallback
//!   --cache-dir DIR                       disk cache location (default: .slp-cache)
//!   --no-cache                            disable caching entirely
//!   --json                                machine-readable report
//!   --strict                              exit 1 on degradation or verify findings
//!
//! Exit codes: 0 success, 1 compile/run/verification error, 2 usage
//! error.
//! ```

use std::process::ExitCode;
use std::time::Instant;

use slp::analyze::{render_scalar_ranges, ScalarRanges};
use slp::driver::json::Json;
use slp::driver::{DriverReport, DEFAULT_DISK_DIR, DEFAULT_MEMORY_CAPACITY};
use slp::prelude::*;
use slp::verify::Report;
use slp::vm::lower_kernel;

struct Options {
    path: String,
    strategy: Strategy,
    layout: bool,
    machine: MachineConfig,
    emit: String,
    run: bool,
    no_unchecked: bool,
    unroll: usize,
    refine: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: slpc <kernel.slp> [--strategy scalar|native (alias: auto-adjacent)|slp|global|optimal] \
         [--layout] [--machine intel|amd] [--emit source|schedule|code|stats] \
         [--run] [--no-unchecked] [--unroll N] [--refine]\n       \
         slpc analyze <kernel.slp>... [--machine intel|amd] [--json]\n       \
         slpc check <kernel.slp>... [--machine intel|amd] [--static] \
         [--unroll N] [--refine] [--json]\n       \
         slpc prove <kernel.slp>... [--machine intel|amd] \
         [--unroll N] [--refine] [--json]\n       \
         slpc batch <dir|manifest|kernel.slp>... [--strategy ...] [--layout] \
         [--machine intel|amd] [--unroll N] [--refine] \
         [--verify none|static|full|prove] [--prove] \
         [--threads N] [--budget-ms N] [--no-degrade] [--cache-dir DIR] \
         [--no-cache] [--json] [--strict]"
    );
    ExitCode::from(2)
}

fn build_config(
    machine: &MachineConfig,
    strategy: Strategy,
    layout: bool,
    unroll: usize,
    refine: bool,
) -> SlpConfig {
    let mut cfg = SlpConfig::for_machine(machine.clone(), strategy);
    cfg.unroll = unroll;
    if layout {
        cfg = cfg.with_layout();
    }
    if refine {
        cfg = cfg.with_refined_deps();
    }
    cfg
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        path: String::new(),
        strategy: Strategy::Holistic,
        layout: false,
        machine: MachineConfig::intel_dunnington(),
        emit: "stats".to_string(),
        run: false,
        no_unchecked: false,
        unroll: 0,
        refine: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--strategy" => {
                opts.strategy = match args.next().as_deref().and_then(parse_strategy) {
                    Some(s) => s,
                    None => return Err(usage()),
                }
            }
            "--layout" => opts.layout = true,
            "--machine" => {
                opts.machine = match args.next().as_deref().and_then(parse_machine) {
                    Some(m) => m,
                    None => return Err(usage()),
                }
            }
            "--emit" => match args.next() {
                Some(e) if ["source", "schedule", "code", "stats"].contains(&e.as_str()) => {
                    opts.emit = e
                }
                _ => return Err(usage()),
            },
            "--run" => opts.run = true,
            "--no-unchecked" => opts.no_unchecked = true,
            "--unroll" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => opts.unroll = n,
                None => return Err(usage()),
            },
            "--refine" => opts.refine = true,
            path if !path.starts_with('-') && opts.path.is_empty() => opts.path = path.to_string(),
            _ => return Err(usage()),
        }
    }
    if opts.path.is_empty() {
        return Err(usage());
    }
    Ok(opts)
}

/// Reads `path` and compiles it through the shared driver entry point.
fn compile_file(
    path: &str,
    config: SlpConfig,
    verify: VerifyLevel,
) -> Result<slp::driver::CompileOutcome, ExitCode> {
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("slpc: cannot read {path}: {e}");
            return Err(ExitCode::from(1));
        }
    };
    let req = CompileRequest {
        name: path.to_string(),
        source,
        config,
        verify,
    };
    compile_source(&req, None).map_err(|e| {
        match e {
            DriverError::Parse(rendered) => eprintln!("{rendered}"),
            DriverError::Invalid(errors) => {
                // When every validation error is a provable bounds
                // violation, the safety certificate owns the rejection:
                // render it as the V505 hard error instead of raw
                // validator output, matching `slpd`'s S114 gate.
                let faulting: Vec<_> = slp::driver::certify_source(&req.source)
                    .map(|cert| {
                        cert.accesses
                            .into_iter()
                            .filter(|a| a.verdict == slp::core::AccessVerdict::ProvenFaulting)
                            .collect()
                    })
                    .unwrap_or_default();
                if faulting.is_empty() {
                    for err in errors {
                        eprintln!("slpc: {path}: {err}");
                    }
                } else {
                    for a in &faulting {
                        let what = if a.is_write { "store to" } else { "load from" };
                        eprintln!(
                            "slpc: {path}: error[V505]: {what} {} is proven out of \
                             bounds: {}",
                            a.reference, a.detail
                        );
                    }
                }
            }
            other => eprintln!("slpc: {path}: {other}"),
        }
        ExitCode::from(1)
    })
}

/// Options of the `check` subcommand.
struct CheckOptions {
    paths: Vec<String>,
    machine: MachineConfig,
    differential: bool,
    unroll: usize,
    refine: bool,
    json: bool,
}

fn parse_check_args(mut args: impl Iterator<Item = String>) -> Result<CheckOptions, ExitCode> {
    let mut opts = CheckOptions {
        paths: Vec::new(),
        machine: MachineConfig::intel_dunnington(),
        differential: true,
        unroll: 0,
        refine: false,
        json: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--machine" => {
                opts.machine = match args.next().as_deref().and_then(parse_machine) {
                    Some(m) => m,
                    None => return Err(usage()),
                }
            }
            "--static" => opts.differential = false,
            "--unroll" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => opts.unroll = n,
                None => return Err(usage()),
            },
            "--refine" => opts.refine = true,
            "--json" => opts.json = true,
            path if !path.starts_with('-') => opts.paths.push(path.to_string()),
            _ => return Err(usage()),
        }
    }
    if opts.paths.is_empty() {
        return Err(usage());
    }
    Ok(opts)
}

/// The configurations `slpc check` verifies each kernel under.
fn check_configs(opts: &CheckOptions) -> Vec<(String, SlpConfig)> {
    [
        ("Native", Strategy::Native, false),
        ("SLP", Strategy::Baseline, false),
        ("Global", Strategy::Holistic, false),
        ("Global+Layout", Strategy::Holistic, true),
        ("Optimal", Strategy::Optimal, false),
    ]
    .into_iter()
    .map(|(label, strategy, layout)| {
        (
            label.to_string(),
            build_config(&opts.machine, strategy, layout, opts.unroll, opts.refine),
        )
    })
    .collect()
}

/// Structured JSON for a report's diagnostics — the one serialization
/// path shared by `slpc check --json` and `slpc analyze --json`.
fn diagnostics_json(report: &Report) -> Json {
    Json::Arr(
        report
            .diagnostics
            .iter()
            .map(|d| {
                Json::obj(vec![
                    ("code", Json::str(d.code.code())),
                    ("severity", Json::str(d.severity.to_string())),
                    ("message", Json::str(&d.message)),
                    ("span", Json::str(d.span.to_string())),
                    ("rendered", Json::str(d.to_string())),
                ])
            })
            .collect(),
    )
}

fn run_check(opts: &CheckOptions) -> ExitCode {
    let verify = if opts.differential {
        VerifyLevel::Differential
    } else {
        VerifyLevel::Static
    };
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut kernel_rows = Vec::new();
    for path in &opts.paths {
        let mut config_rows = Vec::new();
        for (label, cfg) in check_configs(opts) {
            let outcome = match compile_file(path, cfg, verify) {
                Ok(o) => o,
                Err(code) => return code,
            };
            let report = outcome.report.as_ref().expect("check always verifies");
            errors += report.error_count();
            warnings += report.warning_count();
            if opts.json {
                config_rows.push(Json::obj(vec![
                    ("config", Json::str(&label)),
                    (
                        "superwords",
                        Json::num(outcome.kernel.stats.superwords as u64),
                    ),
                    (
                        "replications",
                        Json::num(outcome.kernel.stats.replications as u64),
                    ),
                    ("errors", Json::num(report.error_count() as u64)),
                    ("warnings", Json::num(report.warning_count() as u64)),
                    ("diagnostics", diagnostics_json(report)),
                    ("fingerprint", Json::str(outcome.fingerprint.to_hex())),
                ]));
            } else if report.is_clean() {
                println!(
                    "{path} [{label}]: ok ({} superword statement(s), {} replication(s))",
                    outcome.kernel.stats.superwords, outcome.kernel.stats.replications
                );
            } else {
                println!("{path} [{label}]:");
                for d in &report.diagnostics {
                    println!("  {d}");
                }
            }
        }
        if opts.json {
            kernel_rows.push(Json::obj(vec![
                ("path", Json::str(path)),
                ("configs", Json::Arr(config_rows)),
            ]));
        }
    }
    if opts.json {
        let doc = Json::obj(vec![
            ("machine", Json::str(&opts.machine.name)),
            ("differential", Json::Bool(opts.differential)),
            ("kernels", Json::Arr(kernel_rows)),
            ("errors", Json::num(errors as u64)),
            ("warnings", Json::num(warnings as u64)),
        ]);
        println!("{}", doc.to_pretty());
    } else {
        println!(
            "checked {} kernel(s) x {} configuration(s) on {}: \
             {errors} error(s), {warnings} warning(s)",
            opts.paths.len(),
            check_configs(opts).len(),
            opts.machine.name
        );
    }
    if errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Options of the `prove` subcommand — `check`'s, minus the
/// differential toggle (the validator itself decides when to degrade).
fn parse_prove_args(mut args: impl Iterator<Item = String>) -> Result<CheckOptions, ExitCode> {
    let mut opts = CheckOptions {
        paths: Vec::new(),
        machine: MachineConfig::intel_dunnington(),
        differential: false,
        unroll: 0,
        refine: false,
        json: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--machine" => {
                opts.machine = match args.next().as_deref().and_then(parse_machine) {
                    Some(m) => m,
                    None => return Err(usage()),
                }
            }
            "--unroll" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => opts.unroll = n,
                None => return Err(usage()),
            },
            "--refine" => opts.refine = true,
            "--json" => opts.json = true,
            path if !path.starts_with('-') => opts.paths.push(path.to_string()),
            _ => return Err(usage()),
        }
    }
    if opts.paths.is_empty() {
        return Err(usage());
    }
    Ok(opts)
}

/// `slpc prove`: compile each kernel under every vectorizing
/// configuration and run the symbolic translation validator over the
/// output. Exits 1 when any configuration is refuted or any verify
/// checker reports an error.
fn run_prove(opts: &CheckOptions) -> ExitCode {
    let mut errors = 0usize;
    let mut counts = [0usize; 3]; // proved, budget, refuted
    let mut kernel_rows = Vec::new();
    for path in &opts.paths {
        let mut config_rows = Vec::new();
        for (label, cfg) in check_configs(opts) {
            let outcome = match compile_file(path, cfg, VerifyLevel::Prove) {
                Ok(o) => o,
                Err(code) => return code,
            };
            let report = outcome.report.as_ref().expect("prove always verifies");
            let verdict = outcome.prove.expect("prove level always carries a verdict");
            errors += report.error_count();
            counts[match verdict {
                ProveVerdict::Proved => 0,
                ProveVerdict::Budget => 1,
                ProveVerdict::Refuted => 2,
            }] += 1;
            if opts.json {
                config_rows.push(Json::obj(vec![
                    ("config", Json::str(&label)),
                    ("verdict", Json::str(verdict.name())),
                    (
                        "superwords",
                        Json::num(outcome.kernel.stats.superwords as u64),
                    ),
                    ("errors", Json::num(report.error_count() as u64)),
                    ("warnings", Json::num(report.warning_count() as u64)),
                    ("diagnostics", diagnostics_json(report)),
                    ("fingerprint", Json::str(outcome.fingerprint.to_hex())),
                ]));
            } else {
                println!(
                    "{path} [{label}]: {} ({} superword statement(s))",
                    verdict.name(),
                    outcome.kernel.stats.superwords
                );
                for d in &report.diagnostics {
                    println!("  {d}");
                }
            }
        }
        if opts.json {
            kernel_rows.push(Json::obj(vec![
                ("path", Json::str(path)),
                ("configs", Json::Arr(config_rows)),
            ]));
        }
    }
    let [proved, budget, refuted] = counts;
    if opts.json {
        let doc = Json::obj(vec![
            ("machine", Json::str(&opts.machine.name)),
            ("kernels", Json::Arr(kernel_rows)),
            ("proved", Json::num(proved as u64)),
            ("budget", Json::num(budget as u64)),
            ("refuted", Json::num(refuted as u64)),
            ("errors", Json::num(errors as u64)),
        ]);
        println!("{}", doc.to_pretty());
    } else {
        println!(
            "proved {proved}/{} kernel-configuration(s) on {}: \
             {budget} degraded to differential, {refuted} refuted",
            proved + budget + refuted,
            opts.machine.name
        );
    }
    if refuted > 0 || errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Options of the `analyze` subcommand.
struct AnalyzeOptions {
    paths: Vec<String>,
    machine: MachineConfig,
    json: bool,
}

fn parse_analyze_args(mut args: impl Iterator<Item = String>) -> Result<AnalyzeOptions, ExitCode> {
    let mut opts = AnalyzeOptions {
        paths: Vec::new(),
        machine: MachineConfig::intel_dunnington(),
        json: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--machine" => {
                opts.machine = match args.next().as_deref().and_then(parse_machine) {
                    Some(m) => m,
                    None => return Err(usage()),
                }
            }
            "--json" => opts.json = true,
            path if !path.starts_with('-') => opts.paths.push(path.to_string()),
            _ => return Err(usage()),
        }
    }
    if opts.paths.is_empty() {
        return Err(usage());
    }
    Ok(opts)
}

/// `slpc analyze`: parse each kernel and run the whole-program dataflow
/// lints (V5xx) plus the scalar range analysis over its *source*
/// program. Static only — nothing is vectorized or executed. Exits 1
/// when any error-severity finding (V502) is present.
fn run_analyze(opts: &AnalyzeOptions) -> ExitCode {
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut kernel_rows = Vec::new();
    for path in &opts.paths {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("slpc: cannot read {path}: {e}");
                return ExitCode::from(1);
            }
        };
        let program = match parse_kernel(&source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{}", e.render(&source));
                return ExitCode::from(1);
            }
        };
        let report = slp::verify::lint_program(&program);
        errors += report.error_count();
        warnings += report.warning_count();
        let ranges = render_scalar_ranges(&program, &ScalarRanges::analyze(&program));
        if opts.json {
            // Surface the range oracle's telemetry: a refined Holistic
            // compile reports how many false dependences the
            // strided-interval analysis disproved for this kernel.
            let refine_req = CompileRequest {
                name: path.clone(),
                source: source.clone(),
                config: build_config(&opts.machine, Strategy::Holistic, false, 0, true),
                verify: VerifyLevel::None,
            };
            let deps_refuted = compile_source(&refine_req, None)
                .map(|o| o.kernel.stats.deps_refuted)
                .unwrap_or(0);
            kernel_rows.push(Json::obj(vec![
                ("path", Json::str(path)),
                ("errors", Json::num(report.error_count() as u64)),
                ("warnings", Json::num(report.warning_count() as u64)),
                ("deps_refuted", Json::num(deps_refuted as u64)),
                ("diagnostics", diagnostics_json(&report)),
                (
                    "scalar_ranges",
                    Json::Obj(
                        ranges
                            .iter()
                            .map(|(name, range)| (name.clone(), Json::str(range)))
                            .collect(),
                    ),
                ),
            ]));
        } else {
            if report.is_clean() {
                println!("{path}: ok");
            } else {
                println!("{path}:");
                for d in &report.diagnostics {
                    println!("  {d}");
                }
            }
            if !ranges.is_empty() {
                println!("  scalar ranges:");
                for (name, range) in &ranges {
                    println!("    {name} in {range}");
                }
            }
        }
    }
    if opts.json {
        let doc = Json::obj(vec![
            ("machine", Json::str(&opts.machine.name)),
            ("kernels", Json::Arr(kernel_rows)),
            ("errors", Json::num(errors as u64)),
            ("warnings", Json::num(warnings as u64)),
        ]);
        println!("{}", doc.to_pretty());
    } else {
        println!(
            "analyzed {} kernel(s): {errors} error(s), {warnings} warning(s)",
            opts.paths.len()
        );
    }
    if errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Options of the `batch` subcommand.
struct BatchOptions {
    inputs: Vec<String>,
    strategy: Strategy,
    layout: bool,
    machine: MachineConfig,
    unroll: usize,
    refine: bool,
    verify: VerifyLevel,
    threads: usize,
    budget_ms: Option<u64>,
    degrade: bool,
    cache_dir: Option<String>,
    no_cache: bool,
    json: bool,
    strict: bool,
}

fn parse_batch_args(mut args: impl Iterator<Item = String>) -> Result<BatchOptions, ExitCode> {
    let mut opts = BatchOptions {
        inputs: Vec::new(),
        strategy: Strategy::Holistic,
        layout: false,
        machine: MachineConfig::intel_dunnington(),
        unroll: 0,
        refine: false,
        verify: VerifyLevel::Static,
        threads: 0,
        budget_ms: None,
        degrade: true,
        cache_dir: None,
        no_cache: false,
        json: false,
        strict: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--strategy" => {
                opts.strategy = match args.next().as_deref().and_then(parse_strategy) {
                    Some(s) => s,
                    None => return Err(usage()),
                }
            }
            "--layout" => opts.layout = true,
            "--machine" => {
                opts.machine = match args.next().as_deref().and_then(parse_machine) {
                    Some(m) => m,
                    None => return Err(usage()),
                }
            }
            "--unroll" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => opts.unroll = n,
                None => return Err(usage()),
            },
            "--refine" => opts.refine = true,
            "--verify" => {
                opts.verify = match args.next().as_deref().and_then(VerifyLevel::from_name) {
                    Some(v) => v,
                    None => return Err(usage()),
                }
            }
            "--threads" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => opts.threads = n,
                None => return Err(usage()),
            },
            "--budget-ms" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => opts.budget_ms = Some(n),
                None => return Err(usage()),
            },
            "--prove" => opts.verify = VerifyLevel::Prove,
            "--no-degrade" => opts.degrade = false,
            "--cache-dir" => match args.next() {
                Some(dir) => opts.cache_dir = Some(dir),
                None => return Err(usage()),
            },
            "--no-cache" => opts.no_cache = true,
            "--json" => opts.json = true,
            "--strict" => opts.strict = true,
            path if !path.starts_with('-') => opts.inputs.push(path.to_string()),
            _ => return Err(usage()),
        }
    }
    if opts.inputs.is_empty() {
        return Err(usage());
    }
    Ok(opts)
}

/// Expands directories (sorted `*.slp` members), kernel files and
/// manifests into `(name, path)` pairs.
fn collect_kernel_paths(inputs: &[String]) -> Result<Vec<std::path::PathBuf>, String> {
    let mut paths = Vec::new();
    for input in inputs {
        let path = std::path::Path::new(input);
        if path.is_dir() {
            let mut members: Vec<std::path::PathBuf> = std::fs::read_dir(path)
                .map_err(|e| format!("cannot read directory {input}: {e}"))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|ext| ext == "slp"))
                .collect();
            members.sort();
            if members.is_empty() {
                return Err(format!("directory {input} contains no .slp files"));
            }
            paths.extend(members);
        } else if path.extension().is_some_and(|ext| ext == "slp") {
            paths.push(path.to_path_buf());
        } else {
            // A manifest: one kernel path per line, relative to the
            // manifest's directory.
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read manifest {input}: {e}"))?;
            let base = path.parent().unwrap_or(std::path::Path::new("."));
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                paths.push(base.join(line));
            }
        }
    }
    if paths.is_empty() {
        return Err("no kernels to compile".to_string());
    }
    Ok(paths)
}

fn kernel_name(path: &std::path::Path) -> String {
    path.file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

fn run_batch(opts: &BatchOptions) -> ExitCode {
    let paths = match collect_kernel_paths(&opts.inputs) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("slpc: {msg}");
            return ExitCode::from(1);
        }
    };
    let mut requests = Vec::with_capacity(paths.len());
    for path in &paths {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("slpc: cannot read {}: {e}", path.display());
                return ExitCode::from(1);
            }
        };
        requests.push(CompileRequest {
            name: kernel_name(path),
            source,
            config: build_config(
                &opts.machine,
                opts.strategy,
                opts.layout,
                opts.unroll,
                opts.refine,
            ),
            verify: opts.verify,
        });
    }

    let cache = if opts.no_cache {
        None
    } else {
        let dir = opts
            .cache_dir
            .clone()
            .unwrap_or_else(|| DEFAULT_DISK_DIR.to_string());
        Some(CompileCache::with_disk(DEFAULT_MEMORY_CAPACITY, dir))
    };
    let batch_config = BatchConfig {
        threads: opts.threads,
        budget_ms: opts.budget_ms,
        degrade: opts.degrade,
    };

    let start = Instant::now();
    let outcomes = compile_batch(&requests, cache.as_ref(), &batch_config);
    let wall_nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let report =
        DriverReport::from_outcomes(&outcomes, wall_nanos, cache.as_ref().map(|c| c.stats()));

    if opts.json {
        println!("{}", report.to_json().to_pretty());
    } else {
        print!("{}", report.summary_table());
    }

    let failed = report.failed_count() > 0;
    let strict_dirty = opts.strict && !report.all_clean();
    if failed || strict_dirty {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1).peekable();
    match argv.peek().map(String::as_str) {
        Some("analyze") => {
            argv.next();
            return match parse_analyze_args(argv) {
                Ok(opts) => run_analyze(&opts),
                Err(code) => code,
            };
        }
        Some("check") => {
            argv.next();
            return match parse_check_args(argv) {
                Ok(opts) => run_check(&opts),
                Err(code) => code,
            };
        }
        Some("prove") => {
            argv.next();
            return match parse_prove_args(argv) {
                Ok(opts) => run_prove(&opts),
                Err(code) => code,
            };
        }
        Some("batch") => {
            argv.next();
            return match parse_batch_args(argv) {
                Ok(opts) => run_batch(&opts),
                Err(code) => code,
            };
        }
        _ => {}
    }
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };
    let config = build_config(
        &opts.machine,
        opts.strategy,
        opts.layout,
        opts.unroll,
        opts.refine,
    );
    let outcome = match compile_file(&opts.path, config, VerifyLevel::None) {
        Ok(o) => o,
        Err(code) => return code,
    };
    let kernel = &outcome.kernel;

    match opts.emit.as_str() {
        "source" => print!("{}", kernel.program.to_source()),
        "schedule" => {
            for (bid, sched) in &kernel.schedules {
                println!("block {bid}:");
                for item in sched.items() {
                    println!("  {item}");
                }
            }
        }
        "code" => {
            for (bid, code) in lower_kernel(kernel, &opts.machine, true) {
                println!("block {bid} (vectorized = {}):", code.vectorized);
                if !code.preheader.is_empty() {
                    println!("  preheader:");
                    for inst in &code.preheader {
                        println!("    {inst}");
                    }
                }
                for inst in &code.insts {
                    println!("  {inst}");
                }
            }
        }
        "stats" => {
            let s = kernel.stats;
            println!("statements            {}", s.stmts);
            println!("blocks                {}", s.blocks);
            println!("superword statements  {}", s.superwords);
            println!("vectorized statements {}", s.vectorized_stmts);
            println!("dependences refuted   {}", s.deps_refuted);
            println!("scalar packs laid out {}", s.scalar_packs_laid_out);
            println!("array replications    {}", s.replications);
            println!("accesses proven safe  {}", s.accesses_proven_safe);
            if s.accesses_unknown + s.accesses_proven_faulting > 0 {
                println!("accesses unproven     {}", s.accesses_unknown);
                println!("accesses faulting     {}", s.accesses_proven_faulting);
            }
            if kernel.config.strategy == Strategy::Optimal {
                println!("solver nodes          {}", s.opt_nodes);
                println!("optimality gap        {} ppm", s.opt_gap_ppm);
                println!(
                    "solver outcome        {}",
                    if s.opt_degraded {
                        "budget expired (anytime result)"
                    } else {
                        "proven optimal"
                    }
                );
            }
        }
        _ => unreachable!("validated in parse_args"),
    }

    if opts.run {
        // `--no-unchecked` opts out of certificate-driven check elision:
        // every access keeps its per-dimension bounds check, as if
        // nothing had been proven.
        let result = if opts.no_unchecked {
            slp::vm::execute_fully_checked(kernel, &opts.machine)
        } else {
            execute(kernel, &opts.machine)
        };
        match result {
            Ok(out) => {
                let m = &out.stats.metrics;
                println!("-- run on {} --", opts.machine.name);
                println!("cycles                {:.0}", m.cycles);
                println!("dynamic instructions  {}", m.dynamic_instructions);
                println!("memory operations     {}", m.memory_ops);
                println!("packing/unpacking ops {}", m.packing_ops);
                println!("permutations          {}", m.permutes);
                println!(
                    "simulated time        {:.3} µs",
                    out.stats.seconds(&opts.machine) * 1e6
                );
                if out.block_cycles.len() > 1 {
                    println!("hottest blocks:");
                    for (bid, cycles) in out.block_cycles.iter().take(5) {
                        println!(
                            "  {bid:<6} {cycles:>10.0} cycles ({:.1}%)",
                            cycles / out.stats.metrics.cycles * 100.0
                        );
                    }
                }
            }
            Err(e) => {
                eprintln!("slpc: {e}");
                return ExitCode::from(1);
            }
        }
    }
    ExitCode::SUCCESS
}
