//! `slpc` — the command-line driver for the SLP framework.
//!
//! ```text
//! slpc <kernel.slp> [options]
//!
//! options:
//!   --strategy scalar|native|slp|global   optimizer (default: global)
//!   --layout                              enable the §5 data layout stage
//!   --machine intel|amd                   cost model (default: intel)
//!   --emit source|schedule|code|stats     what to print (default: stats)
//!   --run                                 execute and print counters
//!   --unroll N                            unroll factor (default: auto)
//!
//! slpc check <kernel.slp>... [options]
//!
//! Compiles each kernel under every vectorizing configuration (Native,
//! SLP, Global, Global+Layout) and runs the slp-verify checkers over the
//! output: dependence preservation, pack legality, layout soundness, and
//! differential translation validation against the scalar build.
//!
//! options:
//!   --machine intel|amd                   cost model (default: intel)
//!   --static                              skip the differential execution
//!   --unroll N                            unroll factor (default: auto)
//! ```
//!
//! Exit codes: 0 success, 1 compile/run/verification error, 2 usage
//! error.

use std::process::ExitCode;

use slp::core::{compile, MachineConfig, SlpConfig, Strategy};
use slp::vm::{execute, lower_kernel};

struct Options {
    path: String,
    strategy: Strategy,
    layout: bool,
    machine: MachineConfig,
    emit: String,
    run: bool,
    unroll: usize,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: slpc <kernel.slp> [--strategy scalar|native|slp|global] \
         [--layout] [--machine intel|amd] [--emit source|schedule|code|stats] \
         [--run] [--unroll N]\n       \
         slpc check <kernel.slp>... [--machine intel|amd] [--static] \
         [--unroll N]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        path: String::new(),
        strategy: Strategy::Holistic,
        layout: false,
        machine: MachineConfig::intel_dunnington(),
        emit: "stats".to_string(),
        run: false,
        unroll: 0,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--strategy" => {
                opts.strategy = match args.next().as_deref() {
                    Some("scalar") => Strategy::Scalar,
                    Some("native") => Strategy::Native,
                    Some("slp") => Strategy::Baseline,
                    Some("global") => Strategy::Holistic,
                    _ => return Err(usage()),
                }
            }
            "--layout" => opts.layout = true,
            "--machine" => {
                opts.machine = match args.next().as_deref() {
                    Some("intel") => MachineConfig::intel_dunnington(),
                    Some("amd") => MachineConfig::amd_phenom_ii(),
                    _ => return Err(usage()),
                }
            }
            "--emit" => match args.next() {
                Some(e) if ["source", "schedule", "code", "stats"].contains(&e.as_str()) => {
                    opts.emit = e
                }
                _ => return Err(usage()),
            },
            "--run" => opts.run = true,
            "--unroll" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => opts.unroll = n,
                None => return Err(usage()),
            },
            path if !path.starts_with('-') && opts.path.is_empty() => opts.path = path.to_string(),
            _ => return Err(usage()),
        }
    }
    if opts.path.is_empty() {
        return Err(usage());
    }
    Ok(opts)
}

/// Options of the `check` subcommand.
struct CheckOptions {
    paths: Vec<String>,
    machine: MachineConfig,
    differential: bool,
    unroll: usize,
}

fn parse_check_args(mut args: impl Iterator<Item = String>) -> Result<CheckOptions, ExitCode> {
    let mut opts = CheckOptions {
        paths: Vec::new(),
        machine: MachineConfig::intel_dunnington(),
        differential: true,
        unroll: 0,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--machine" => {
                opts.machine = match args.next().as_deref() {
                    Some("intel") => MachineConfig::intel_dunnington(),
                    Some("amd") => MachineConfig::amd_phenom_ii(),
                    _ => return Err(usage()),
                }
            }
            "--static" => opts.differential = false,
            "--unroll" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => opts.unroll = n,
                None => return Err(usage()),
            },
            path if !path.starts_with('-') => opts.paths.push(path.to_string()),
            _ => return Err(usage()),
        }
    }
    if opts.paths.is_empty() {
        return Err(usage());
    }
    Ok(opts)
}

/// The configurations `slpc check` verifies each kernel under.
fn check_configs(opts: &CheckOptions) -> Vec<(String, SlpConfig)> {
    let mut configs = Vec::new();
    for (label, strategy, layout) in [
        ("Native", Strategy::Native, false),
        ("SLP", Strategy::Baseline, false),
        ("Global", Strategy::Holistic, false),
        ("Global+Layout", Strategy::Holistic, true),
    ] {
        let mut cfg = SlpConfig::for_machine(opts.machine.clone(), strategy);
        cfg.unroll = opts.unroll;
        if layout {
            cfg = cfg.with_layout();
        }
        configs.push((label.to_string(), cfg));
    }
    configs
}

fn run_check(opts: &CheckOptions) -> ExitCode {
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut kernels = 0usize;
    for path in &opts.paths {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("slpc: cannot read {path}: {e}");
                return ExitCode::from(1);
            }
        };
        let program = match slp::lang::compile(&source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{}", e.render(&source));
                return ExitCode::from(1);
            }
        };
        if let Err(es) = program.validate() {
            for e in es {
                eprintln!("slpc: {path}: {e}");
            }
            return ExitCode::from(1);
        }
        kernels += 1;
        for (label, cfg) in check_configs(opts) {
            let kernel = compile(&program, &cfg);
            let report = if opts.differential {
                slp::verify::verify_with_execution(&program, &kernel)
            } else {
                slp::verify::verify_kernel(&kernel)
            };
            errors += report.error_count();
            warnings += report.warning_count();
            if report.is_clean() {
                println!(
                    "{path} [{label}]: ok ({} superword statement(s), {} replication(s))",
                    kernel.stats.superwords, kernel.stats.replications
                );
            } else {
                println!("{path} [{label}]:");
                for d in &report.diagnostics {
                    println!("  {d}");
                }
            }
        }
    }
    println!(
        "checked {kernels} kernel(s) x {} configuration(s) on {}: \
         {errors} error(s), {warnings} warning(s)",
        check_configs(opts).len(),
        opts.machine.name
    );
    if errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1).peekable();
    if argv.peek().map(String::as_str) == Some("check") {
        argv.next();
        return match parse_check_args(argv) {
            Ok(opts) => run_check(&opts),
            Err(code) => code,
        };
    }
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };
    let source = match std::fs::read_to_string(&opts.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("slpc: cannot read {}: {e}", opts.path);
            return ExitCode::from(1);
        }
    };
    let program = match slp::lang::compile(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{}", e.render(&source));
            return ExitCode::from(1);
        }
    };
    if let Err(errors) = program.validate() {
        for e in errors {
            eprintln!("slpc: {e}");
        }
        return ExitCode::from(1);
    }

    let mut cfg = SlpConfig::for_machine(opts.machine.clone(), opts.strategy);
    cfg.unroll = opts.unroll;
    if opts.layout {
        cfg = cfg.with_layout();
    }
    let kernel = compile(&program, &cfg);

    match opts.emit.as_str() {
        "source" => print!("{}", kernel.program.to_source()),
        "schedule" => {
            for (bid, sched) in &kernel.schedules {
                println!("block {bid}:");
                for item in sched.items() {
                    println!("  {item}");
                }
            }
        }
        "code" => {
            for (bid, code) in lower_kernel(&kernel, &opts.machine, true) {
                println!("block {bid} (vectorized = {}):", code.vectorized);
                if !code.preheader.is_empty() {
                    println!("  preheader:");
                    for inst in &code.preheader {
                        println!("    {inst}");
                    }
                }
                for inst in &code.insts {
                    println!("  {inst}");
                }
            }
        }
        "stats" => {
            let s = kernel.stats;
            println!("statements            {}", s.stmts);
            println!("blocks                {}", s.blocks);
            println!("superword statements  {}", s.superwords);
            println!("vectorized statements {}", s.vectorized_stmts);
            println!("scalar packs laid out {}", s.scalar_packs_laid_out);
            println!("array replications    {}", s.replications);
        }
        _ => unreachable!("validated in parse_args"),
    }

    if opts.run {
        match execute(&kernel, &opts.machine) {
            Ok(out) => {
                let m = &out.stats.metrics;
                println!("-- run on {} --", opts.machine.name);
                println!("cycles                {:.0}", m.cycles);
                println!("dynamic instructions  {}", m.dynamic_instructions);
                println!("memory operations     {}", m.memory_ops);
                println!("packing/unpacking ops {}", m.packing_ops);
                println!("permutations          {}", m.permutes);
                println!(
                    "simulated time        {:.3} µs",
                    out.stats.seconds(&opts.machine) * 1e6
                );
                if out.block_cycles.len() > 1 {
                    println!("hottest blocks:");
                    for (bid, cycles) in out.block_cycles.iter().take(5) {
                        println!(
                            "  {bid:<6} {cycles:>10.0} cycles ({:.1}%)",
                            cycles / out.stats.metrics.cycles * 100.0
                        );
                    }
                }
            }
            Err(e) => {
                eprintln!("slpc: {e}");
                return ExitCode::from(1);
            }
        }
    }
    ExitCode::SUCCESS
}
