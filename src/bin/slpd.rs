//! `slpd` — the SLP compile server.
//!
//! ```text
//! slpd serve [--cache-dir DIR] [--no-cache] [--memory N]
//!
//! options:
//!   --cache-dir DIR   disk cache location (default: .slp-cache)
//!   --no-cache        in-memory caching only, no disk tier
//!   --memory N        in-memory LRU capacity (default: 256)
//! ```
//!
//! Speaks line-delimited JSON over stdin/stdout: one request per input
//! line, one response per output line, flushed immediately. All
//! requests share one content-addressed compile cache (in-memory LRU
//! plus a disk tier under `.slp-cache/` by default), so repeated
//! sources are answered without recompiling — across requests and, via
//! the disk tier, across server restarts. See `slp::driver::serve` for
//! the request and response schema.
//!
//! The loop ends on EOF or a `{"cmd":"shutdown"}` request; a summary
//! line goes to stderr. Exit codes: 0 success, 1 I/O error, 2 usage
//! error.

use std::process::ExitCode;

use slp::driver::{serve, DEFAULT_DISK_DIR, DEFAULT_MEMORY_CAPACITY};
use slp::prelude::CompileCache;

struct Options {
    cache_dir: Option<String>,
    no_cache: bool,
    memory: usize,
}

fn usage() -> ExitCode {
    eprintln!("usage: slpd serve [--cache-dir DIR] [--no-cache] [--memory N]");
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut args = std::env::args().skip(1).peekable();
    // The verb is optional — `slpd` alone serves too.
    if args.peek().map(String::as_str) == Some("serve") {
        args.next();
    }
    let mut opts = Options {
        cache_dir: None,
        no_cache: false,
        memory: DEFAULT_MEMORY_CAPACITY,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cache-dir" => match args.next() {
                Some(dir) => opts.cache_dir = Some(dir),
                None => return Err(usage()),
            },
            "--no-cache" => opts.no_cache = true,
            "--memory" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => opts.memory = n,
                _ => return Err(usage()),
            },
            _ => return Err(usage()),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };
    let cache = if opts.no_cache {
        CompileCache::in_memory(opts.memory)
    } else {
        let dir = opts
            .cache_dir
            .unwrap_or_else(|| DEFAULT_DISK_DIR.to_string());
        CompileCache::with_disk(opts.memory, dir)
    };

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    match serve(stdin.lock(), stdout.lock(), &cache) {
        Ok(summary) => {
            let stats = cache.stats();
            eprintln!(
                "slpd: {} request(s), {} compiled, {} cache hit(s), {} error(s); \
                 cache hit rate {:.1}%",
                summary.requests,
                summary.compiled,
                summary.cache_hits,
                summary.errors,
                stats.hit_rate() * 100.0
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("slpd: I/O error: {e}");
            ExitCode::from(1)
        }
    }
}
