//! `slpd` — the SLP compile server.
//!
//! ```text
//! slpd serve [options]
//!
//! transport:
//!   (default)            line-delimited JSON over stdin/stdout
//!   --tcp ADDR           serve TCP on ADDR (e.g. 127.0.0.1:7474);
//!                        the same port answers `GET /metrics`
//!
//! cache:
//!   --cache-dir DIR      disk cache location (default: .slp-cache)
//!   --no-cache           in-memory caching only, no disk tier
//!   --memory N           in-memory LRU capacity (default: 256)
//!
//! serving:
//!   --max-in-flight N    admission cap on concurrent compiles
//!                        (default: 256, 0 = unlimited)
//!   --quota CAP:REFILL   per-tenant token bucket: capacity and
//!                        tokens-per-second (default: unmetered)
//!   --budget-ms N        default per-compile time budget
//!   --no-dedup           disable in-flight request coalescing
//!   --workers N          TCP worker threads (default: 4)
//! ```
//!
//! One request per input line, one response per output line, flushed
//! immediately. Requests use the versioned v1 envelope
//! (`{"v":1,"id":…,"tenant":…,"cmd":…}`) or the legacy bare form;
//! see `slp::driver` (the `slp-serve` protocol module) for the full
//! schema and the `S100`-series error codes.
//!
//! The `compile` verb accepts a `strategy` field naming any pipeline
//! strategy: `scalar`, `native` (alias `auto-adjacent`), `slp`,
//! `global` (the default) or `optimal`.
//!
//! All requests share one content-addressed compile cache (in-memory
//! sharded LRU plus a disk tier under `.slp-cache/` by default), so
//! repeated sources are answered without recompiling — across requests,
//! across connections and, via the disk tier, across server restarts.
//! Identical requests in flight at the same time are coalesced onto a
//! single compile.
//!
//! The stdio loop ends on EOF or a `{"cmd":"shutdown"}` request; a TCP
//! server drains gracefully on `shutdown`. A summary line goes to
//! stderr. Exit codes: 0 success, 1 I/O error, 2 usage error.

use std::process::ExitCode;
use std::sync::Arc;

use slp::driver::{
    serve_handler, serve_tcp, Handler, QuotaConfig, ServeConfig, TcpOptions, DEFAULT_DISK_DIR,
    DEFAULT_MEMORY_CAPACITY,
};
use slp::prelude::{CompileCache, ServeSummary};

struct Options {
    cache_dir: Option<String>,
    no_cache: bool,
    memory: usize,
    tcp: Option<String>,
    workers: usize,
    serve: ServeConfig,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: slpd serve [--tcp ADDR] [--cache-dir DIR] [--no-cache] [--memory N] \
         [--max-in-flight N] [--quota CAP:REFILL] [--budget-ms N] [--no-dedup] [--workers N]"
    );
    ExitCode::from(2)
}

fn parse_quota(text: &str) -> Option<QuotaConfig> {
    let (cap, refill) = text.split_once(':')?;
    Some(QuotaConfig {
        capacity: cap.trim().parse().ok().filter(|c: &f64| *c >= 0.0)?,
        refill_per_sec: refill.trim().parse().ok().filter(|r: &f64| *r >= 0.0)?,
    })
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut args = std::env::args().skip(1).peekable();
    // The verb is optional — `slpd` alone serves too.
    if args.peek().map(String::as_str) == Some("serve") {
        args.next();
    }
    let mut opts = Options {
        cache_dir: None,
        no_cache: false,
        memory: DEFAULT_MEMORY_CAPACITY,
        tcp: None,
        workers: 4,
        serve: ServeConfig::default(),
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cache-dir" => match args.next() {
                Some(dir) => opts.cache_dir = Some(dir),
                None => return Err(usage()),
            },
            "--no-cache" => opts.no_cache = true,
            "--memory" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => opts.memory = n,
                _ => return Err(usage()),
            },
            "--tcp" => match args.next() {
                Some(addr) => opts.tcp = Some(addr),
                None => return Err(usage()),
            },
            "--max-in-flight" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => opts.serve.max_in_flight = n,
                None => return Err(usage()),
            },
            "--quota" => match args.next().as_deref().and_then(parse_quota) {
                Some(q) => opts.serve.quota = Some(q),
                None => return Err(usage()),
            },
            "--budget-ms" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => opts.serve.default_budget_ms = Some(n),
                None => return Err(usage()),
            },
            "--no-dedup" => opts.serve.dedup = false,
            "--workers" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => opts.workers = n,
                _ => return Err(usage()),
            },
            _ => return Err(usage()),
        }
    }
    Ok(opts)
}

fn report(summary: &ServeSummary, cache: &CompileCache) {
    let stats = cache.stats();
    eprintln!(
        "slpd: {} request(s), {} accepted, {} compiled, {} cache hit(s), {} coalesced, \
         {} overload + {} quota rejection(s), {} error(s); cache hit rate {:.1}%",
        summary.requests,
        summary.accepted,
        summary.compiled,
        summary.cache_hits,
        summary.coalesced,
        summary.rejected_overload,
        summary.rejected_quota,
        summary.errors,
        stats.hit_rate() * 100.0
    );
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };
    let cache = Arc::new(if opts.no_cache {
        CompileCache::in_memory(opts.memory)
    } else {
        let dir = opts
            .cache_dir
            .as_deref()
            .unwrap_or(DEFAULT_DISK_DIR)
            .to_string();
        CompileCache::with_disk(opts.memory, dir)
    });
    let handler = Arc::new(Handler::new(Arc::clone(&cache), opts.serve));

    if let Some(addr) = opts.tcp {
        let server = match serve_tcp(
            addr.as_str(),
            Arc::clone(&handler),
            TcpOptions {
                workers: opts.workers,
                ..TcpOptions::default()
            },
        ) {
            Ok(server) => server,
            Err(e) => {
                eprintln!("slpd: cannot serve on {addr}: {e}");
                return ExitCode::from(1);
            }
        };
        eprintln!("slpd: serving TCP on {}", server.local_addr());
        let summary = server.wait();
        report(&summary, &cache);
        return ExitCode::SUCCESS;
    }

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    match serve_handler(stdin.lock(), stdout.lock(), &handler) {
        Ok(summary) => {
            report(&summary, &cache);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("slpd: I/O error: {e}");
            ExitCode::from(1)
        }
    }
}
