//! # slp — a compiler framework for extracting superword level parallelism
//!
//! A from-scratch Rust reproduction of *Liu, Zhang, Jang, Ding, Kandemir:
//! "A Compiler Framework for Extracting Superword Level Parallelism"*
//! (PLDI 2012): a holistic SLP auto-vectorizer whose statement grouping
//! maximizes superword reuse over whole basic blocks, a scheduling phase
//! that fixes lane orders against a live superword set, and a data layout
//! stage (scalar offset assignment and array mapping/replication) — plus
//! everything the evaluation needs: an IR, a kernel language, the
//! Larsen–Amarasinghe baseline, a native-style vectorizer, a
//! cycle-approximate SIMD virtual machine modelling the paper's two test
//! machines, and the sixteen-benchmark suite.
//!
//! The workspace crates are re-exported here under short names:
//!
//! * [`ir`] — typed IR, affine subscripts, dependence analysis, unrolling
//! * [`lang`] — the kernel mini-language frontend
//! * [`analysis`] — candidate groups, conflict graphs, reuse weights
//! * [`analyze`] — abstract interpretation: strided intervals, def-use,
//!   the range-refined dependence oracle, whole-program lints
//! * [`core`] — grouping, scheduling, baselines, cost model, layout
//! * [`opt`] — exact statement packing: 0-1 ILP branch-and-bound behind
//!   the `Packer` trait (`Strategy::Optimal`)
//! * [`vm`] — vector code generation and the simulated machines
//! * [`suite`] — the Table 3 benchmark kernels and a program generator
//! * [`tv`] — symbolic translation validation: prove scalar ≡ vectorized
//!   over all inputs via hash-consed value graphs
//! * [`verify`] — legality lints and differential translation validation
//! * [`driver`] — compile caching, parallel batches, telemetry, plus the
//!   `slp-serve` layer: versioned wire protocol, multi-tenant quotas,
//!   request coalescing, stdio/TCP transports and a load generator
//!
//! # Examples
//!
//! Vectorize a kernel and verify both speed and semantics:
//!
//! ```
//! use slp::core::{compile, MachineConfig, SlpConfig, Strategy};
//! use slp::vm::execute;
//!
//! let program = slp::lang::compile(
//!     "kernel axpy { array X: f64[64]; array Y: f64[64]; scalar a: f64;
//!      for i in 0..64 { Y[i] = Y[i] + a * X[i]; } }",
//! )?;
//! let machine = MachineConfig::intel_dunnington();
//!
//! let scalar = compile(&program, &SlpConfig::for_machine(machine.clone(), Strategy::Scalar));
//! let global = compile(&program, &SlpConfig::for_machine(machine.clone(), Strategy::Holistic));
//!
//! let s = execute(&scalar, &machine)?;
//! let g = execute(&global, &machine)?;
//! assert!(g.state.arrays_bitwise_eq(&s.state, program.arrays().len()));
//! assert!(g.stats.metrics.cycles < s.stats.metrics.cycles);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use slp_analysis as analysis;
pub use slp_analyze as analyze;
pub use slp_core as core;
pub use slp_ir as ir;
pub use slp_lang as lang;
pub use slp_opt as opt;
pub use slp_suite as suite;
pub use slp_tv as tv;
pub use slp_verify as verify;
pub use slp_vm as vm;

/// The batch/caching driver plus the serving layer in one namespace.
///
/// Everything from `slp-driver` (compile requests, the two-tier cache,
/// batches, reports, fingerprints) re-exported alongside the
/// `slp-serve` front: [`serve`](driver::serve) (stdio line protocol),
/// [`serve_tcp`](driver::serve_tcp) (concurrent TCP with workers,
/// admission control and `GET /metrics`), the transport-agnostic
/// [`Handler`](driver::Handler) with its [`ServeConfig`](driver::ServeConfig)
/// / [`QuotaConfig`](driver::QuotaConfig) knobs, and the stable
/// [`ErrorCode`](driver::ErrorCode) table of the wire protocol.
pub mod driver {
    pub use slp_driver::*;
    pub use slp_serve::{
        loadgen, protocol, serve, serve_handler, serve_tcp, ErrorCode, Handler, QuotaConfig,
        ServeConfig, TcpOptions, TcpServer,
    };
}

/// The stable, front-end-facing API surface in one import.
///
/// Everything a tool built on this framework needs — parsing, pipeline
/// configuration, compilation, execution, verification and the typed
/// error — without reaching into individual workspace crates:
///
/// ```
/// use slp::prelude::*;
///
/// let request = CompileRequest {
///     name: "axpy".into(),
///     source: "kernel axpy { array X: f64[64]; array Y: f64[64]; scalar a: f64;
///              for i in 0..64 { Y[i] = Y[i] + a * X[i]; } }".into(),
///     config: SlpConfig::for_machine(MachineConfig::intel_dunnington(), "global".parse()?),
///     verify: VerifyLevel::Static,
/// };
/// let compiled = compile_source(&request, None).map_err(|e| e.to_string())?;
/// let outcome = execute(&compiled.kernel, &compiled.kernel.config.machine)?;
/// assert!(outcome.stats.metrics.cycles > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// The surface is intentionally small and additive: new items may
/// appear here, but the meaning and signatures of the existing ones are
/// stable across the workspace's internal refactors (the bytecode
/// execution engine replaced the tree-walking interpreter underneath
/// [`execute`] without any change visible through this module).
pub mod prelude {
    pub use slp_core::{
        compile, compile_timed, estimate_kernel_cost, CompileStats, CompiledKernel, ExecError,
        ExecErrorKind, HeuristicPacker, MachineConfig, OptParams, PackOutcome, PackRequest, Packer,
        PackerHandle, SlpConfig, SlpError, Strategy, Verifier, VerifierHandle, VerifyError,
    };
    pub use slp_driver::{
        compile_batch, compile_source, parallel_map, parse_machine, parse_strategy, BatchConfig,
        CompileCache, CompileOutcome, CompileRequest, DriverError, ProveVerdict, ServeSummary,
        VerifyLevel,
    };
    pub use slp_ir::Program;
    pub use slp_lang::{compile as parse_kernel, ParseError};
    pub use slp_opt::OptimalPacker;
    pub use slp_serve::{serve, serve_tcp, Handler, QuotaConfig, ServeConfig, TcpOptions};
    pub use slp_vm::{
        execute, execute_gated, run_scalar, BytecodeKernel, MachineState, Outcome, RunStats,
    };
}
