//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the thin slice of `rand` it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer
//! ranges, and [`Rng::gen_bool`]. The generator is SplitMix64 —
//! deterministic per seed, which is exactly what the property-test
//! harness needs (the real `rand` makes no cross-version stream
//! guarantees either, so nothing downstream may depend on the exact
//! stream).

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A type constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 high bits give a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): full 2^64 period, passes
            // BigCrush, and two seeds never share a stream offset.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
        let mut c = StdRng::seed_from_u64(8);
        let left: Vec<u64> = (0..8).map(|_| a.gen_range(0..1000)).collect();
        let right: Vec<u64> = (0..8).map(|_| c.gen_range(0..1000)).collect();
        assert_ne!(left, right);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
