//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the slice of `proptest` its tests use: the [`proptest!`]
//! macro, [`strategy::Strategy`] with `prop_map`, integer-range and
//! tuple strategies, [`prelude::any`], [`strategy::Just`],
//! [`prop_oneof!`], [`collection::vec`], and string generation from a
//! (loosely interpreted) regex pattern.
//!
//! Differences from the real crate, by design:
//!
//! * cases are generated from a seed derived from the test name, so
//!   every run explores the same deterministic sequence (no persistence
//!   files, no environment overrides);
//! * failing cases are not shrunk — the panic message carries the case
//!   values instead via the standard assertion formatting;
//! * `&str` strategies ignore the pattern's fine structure and produce
//!   printable-ASCII soup within the pattern's `{lo,hi}` length bound,
//!   which is what the frontend fuzz tests actually need.

pub mod test_runner {
    //! Deterministic random source for case generation.

    /// SplitMix64 generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is a pure function of `name`.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name gives a stable, well-mixed seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty draw");
            self.next_u64() % bound
        }
    }

    /// Per-test configuration. Only the case count is honored.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for producing values of one type.
    pub trait Strategy {
        /// The produced type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Post-processes every drawn value with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy(..)")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.new_value(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Uniformly picks one of several strategies per draw.
    #[derive(Debug)]
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// Builds a union; `arms` must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let k = rng.below(self.0.len() as u64) as usize;
            self.0[k].new_value(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let draw = (rng.next_u64() as u128) % span;
                    (lo as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// String strategy from a pattern: only the trailing `{lo,hi}`
    /// repetition bound is honored; bodies are printable-ASCII soup.
    impl Strategy for &str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_len_bounds(self);
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| (0x20 + rng.below(0x5f) as u8) as char)
                .collect()
        }
    }

    /// Extracts `{lo,hi}` from patterns like `".{0,200}"`; defaults to
    /// `{0,32}` when absent or malformed.
    fn parse_len_bounds(pattern: &str) -> (usize, usize) {
        let default = (0, 32);
        let Some(open) = pattern.rfind('{') else {
            return default;
        };
        let Some(close) = pattern[open..].find('}') else {
            return default;
        };
        let body = &pattern[open + 1..open + close];
        let mut parts = body.splitn(2, ',');
        let lo = parts.next().and_then(|s| s.trim().parse().ok());
        let hi = parts.next().and_then(|s| s.trim().parse().ok());
        match (lo, hi) {
            (Some(lo), Some(hi)) if lo <= hi => (lo, hi),
            (Some(n), None) => (n, n),
            _ => default,
        }
    }

    macro_rules! impl_tuple {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple!(A);
    impl_tuple!(A, B);
    impl_tuple!(A, B, C);
    impl_tuple!(A, B, C, D);
    impl_tuple!(A, B, C, D, E);
    impl_tuple!(A, B, C, D, E, F);
    impl_tuple!(A, B, C, D, E, F, G);
    impl_tuple!(A, B, C, D, E, F, G, H);

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, moderately sized values: the tests feed these into
            // numeric kernels where NaN/Inf would drown every signal.
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * 2000.0 - 1000.0
        }
    }

    /// The strategy behind [`crate::prelude::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy producing vectors of `element` draws.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Vectors whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*` surface.

    pub use crate::strategy::{Any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The canonical strategy for `T`'s full domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::default()
    }
}

/// Defines deterministic property tests.
///
/// Accepts the same surface syntax as the real `proptest!`: an optional
/// `#![proptest_config(..)]` header followed by `#[test]` functions whose
/// arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&$strat, &mut rng);)+
                let _ = __case;
                $body
            }
        }
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
}

/// Case-level assertion (panics with the formatted message on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Case-level equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Case-level inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when its precondition does not hold.
///
/// The real proptest re-draws; this subset simply returns from the case
/// body, which keeps the accepted-case distribution close enough for the
/// suite's purposes.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniformly picks one of the arm strategies per draw.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_compose(x in 1usize..=5, pair in (0i64..10, 0u8..4)) {
            prop_assert!((1..=5).contains(&x));
            prop_assert!(pair.0 < 10 && pair.1 < 4);
        }

        #[test]
        fn map_and_oneof_compose(
            word in prop_oneof![Just("a"), Just("bb")],
            n in (0u32..8).prop_map(|v| v * 2),
        ) {
            prop_assert!(word == "a" || word == "bb");
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn string_patterns_respect_length_bounds(s in ".{0,20}") {
            prop_assert!(s.len() <= 20);
            prop_assert!(s.is_ascii());
        }

        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec(0u8..3, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 3));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
