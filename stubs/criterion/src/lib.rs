//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no crates.io access, so this workspace
//! ships the slice of `criterion` the benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Measurement is a
//! simple mean over `sample_size` wall-clock samples printed as plain
//! text — enough to compare schemes by eye, with none of the real
//! crate's statistics.

use std::fmt::Display;
use std::time::Instant;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times one closure.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    nanos: Vec<f64>,
}

impl Bencher {
    /// Runs `f` once per sample and records the wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            self.nanos.push(start.elapsed().as_nanos() as f64);
        }
    }
}

fn report(label: &str, nanos: &[f64]) {
    if nanos.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let mean = nanos.iter().sum::<f64>() / nanos.len() as f64;
    let (lo, hi) = nanos.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &n| {
        (lo.min(n), hi.max(n))
    });
    println!(
        "{label:<48} {:>12} [{} .. {}]",
        human(mean),
        human(lo),
        human(hi)
    );
}

fn human(nanos: f64) -> String {
    if nanos >= 1e9 {
        format!("{:.3} s", nanos / 1e9)
    } else if nanos >= 1e6 {
        format!("{:.3} ms", nanos / 1e6)
    } else if nanos >= 1e3 {
        format!("{:.3} µs", nanos / 1e3)
    } else {
        format!("{nanos:.0} ns")
    }
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            nanos: Vec::new(),
        };
        f(&mut b);
        report(name, &b.nanos);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark of the group with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            nanos: Vec::new(),
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b.nanos);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_and_groups_run_the_closure() {
        let mut runs = 0usize;
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("count", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
        let mut group = c.benchmark_group("g");
        let input = 5u32;
        let mut seen = 0;
        group.bench_with_input(BenchmarkId::new("id", input), &input, |b, &i| {
            b.iter(|| seen = i)
        });
        group.finish();
        assert_eq!(seen, 5);
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("width", 128).to_string(), "width/128");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn human_units_scale() {
        assert!(human(12.0).ends_with("ns"));
        assert!(human(12_000.0).ends_with("µs"));
        assert!(human(12_000_000.0).ends_with("ms"));
        assert!(human(2e9).ends_with(" s"));
    }
}
